// Tests for the continuous-telemetry tier: sampler delta algebra, ring
// wraparound, saturation detection, the HTTP scrape endpoint, the C surface,
// and -- the load-bearing invariant -- that sampling cannot perturb a
// simulated schedule (the same gate telemetry_overhead_test.cc applies to the
// registry).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/sharded_kv.h"
#include "base/rng.h"
#include "core/pthread_api.h"
#include "harness/runner.h"
#include "locks/cna.h"
#include "parking/parking_lot.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/saturation.h"
#include "telemetry/serve.h"

namespace cna {
namespace {

using telemetry::Condition;
using telemetry::HistogramSnapshot;
using telemetry::Registry;
using telemetry::RegistrySnapshot;
using telemetry::Sampler;
using telemetry::SamplerOptions;
using telemetry::SaturationDetector;
using telemetry::SaturationOptions;

// ---------------------------------------------------------------------------
// Delta algebra: the un-evicted ring deltas sum exactly to cumulative-state
// minus baseline, per counter and per histogram bucket.
// ---------------------------------------------------------------------------

TEST(Sampler, DeltasSumToCumulative) {
  Registry registry;
  auto& ops = registry.GetCounter("test.ops");
  auto& wait = registry.GetHistogram("test.wait_ns");
  ops.Add(7);  // pre-sampler traffic lands in the baseline, not in any delta
  wait.Record(0, 100);

  Sampler sampler(&registry, SamplerOptions{.capacity = 64});
  XorShift64 rng = XorShift64::FromSeed(42);
  for (int tick = 1; tick <= 10; ++tick) {
    const std::uint64_t n = 1 + rng.NextBelow(50);
    ops.Add(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      wait.Record(static_cast<int>(i % 2), 1 + rng.NextBelow(1u << 20));
    }
    sampler.Tick(static_cast<std::uint64_t>(tick) * 1'000'000);
  }
  ASSERT_EQ(sampler.ticks(), 10u);

  // Sum every retained delta...
  std::uint64_t ops_sum = 0;
  HistogramSnapshot wait_sum;
  std::array<HistogramSnapshot, telemetry::kMaxSockets> socket_sum;
  for (const telemetry::Sample& s : sampler.Window()) {
    for (const telemetry::CounterSample& c : s.delta.counters) {
      if (c.name == "test.ops") {
        ops_sum += c.value;
      }
    }
    for (const telemetry::HistogramSample& h : s.delta.histograms) {
      if (h.name == "test.wait_ns") {
        wait_sum.Merge(h.total);
        for (int sock = 0; sock < telemetry::kMaxSockets; ++sock) {
          socket_sum[static_cast<std::size_t>(sock)].Merge(
              h.by_socket[static_cast<std::size_t>(sock)]);
        }
      }
    }
  }

  // ...and compare against cumulative - baseline, exactly.
  EXPECT_EQ(ops_sum, ops.Value() - 7);
  const HistogramSnapshot cumulative = wait.Snapshot();
  const HistogramSnapshot baseline_h = [&] {
    for (const auto& h : sampler.BaselineSnapshot().histograms) {
      if (h.name == "test.wait_ns") {
        return h.total;
      }
    }
    return HistogramSnapshot{};
  }();
  const HistogramSnapshot expect = cumulative - baseline_h;
  EXPECT_EQ(wait_sum.count, expect.count);
  EXPECT_EQ(wait_sum.sum, expect.sum);
  for (int i = 0; i < telemetry::kHistBuckets; ++i) {
    EXPECT_EQ(wait_sum.buckets[static_cast<std::size_t>(i)],
              expect.buckets[static_cast<std::size_t>(i)])
        << "bucket " << i;
  }
  // Per-socket slices obey the same algebra (sockets 0 and 1 recorded).
  for (int sock = 0; sock < 2; ++sock) {
    EXPECT_GT(socket_sum[static_cast<std::size_t>(sock)].count, 0u);
  }
  EXPECT_EQ(socket_sum[0].count + socket_sum[1].count, wait_sum.count);
}

// ---------------------------------------------------------------------------
// Ring wraparound: rates stay correct once old samples are evicted.
// ---------------------------------------------------------------------------

TEST(Sampler, WraparoundKeepsWindowRatesCorrect) {
  Registry registry;
  auto& ops = registry.GetCounter("test.ops");
  Sampler sampler(&registry, SamplerOptions{.capacity = 4});

  // 10 ticks, 1 ms apart, tick i adds 100 * i events.  After wraparound only
  // ticks 7..10 are retained.
  for (int i = 1; i <= 10; ++i) {
    ops.Add(static_cast<std::uint64_t>(100 * i));
    sampler.Tick(static_cast<std::uint64_t>(i) * 1'000'000);
  }
  const auto window = sampler.Window();
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window.front().ts_ns, 7'000'000u);  // oldest retained, in order
  EXPECT_EQ(window.back().ts_ns, 10'000'000u);

  // Full retained window: (700+800+900+1000) events over 4 ms.
  EXPECT_DOUBLE_EQ(sampler.CounterRate("test.ops"),
                   3400.0 * 1e9 / 4'000'000.0);
  // Sub-window of the newest 2: (900+1000) over 2 ms.
  EXPECT_DOUBLE_EQ(sampler.CounterRate("test.ops", 2),
                   1900.0 * 1e9 / 2'000'000.0);
  // The rate curve reflects per-tick rates, oldest first.
  const auto curve = sampler.RateCurve("test.ops");
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].per_sec, 700.0 * 1e9 / 1'000'000.0);
  EXPECT_DOUBLE_EQ(curve[3].per_sec, 1000.0 * 1e9 / 1'000'000.0);
}

TEST(Sampler, RebaselineAfterRegistryReset) {
  Registry registry;
  auto& ops = registry.GetCounter("test.ops");
  auto& wait = registry.GetHistogram("test.wait_ns");
  Sampler sampler(&registry);
  ops.Add(10);
  wait.Record(0, 100);
  sampler.Tick(1'000'000);
  registry.ResetAll();
  sampler.Rebaseline();  // without this the next delta would wrap
  ops.Add(3);
  wait.Record(0, 50);
  sampler.Tick(2'000'000);
  sampler.Tick(3'000'000);
  std::uint64_t total = 0;
  for (const auto& s : sampler.Window()) {
    for (const auto& c : s.delta.counters) {
      if (c.name == "test.ops") {
        total += c.value;
      }
    }
  }
  EXPECT_EQ(total, 3u);
}

// ---------------------------------------------------------------------------
// Saturation: an oversubscribed collapse trips the detector; a steady
// low-contention workload does not.
// ---------------------------------------------------------------------------

TEST(Saturation, OversubscribedCollapseTrips) {
  Registry registry;
  auto& wait = registry.GetHistogram("locktable.wait_ns");
  Sampler sampler(&registry, SamplerOptions{.capacity = 32});
  SaturationOptions opts;
  opts.window = 8;
  SaturationDetector detector(sampler, opts);
  auto& global_trips = Registry::Global().GetCounter(
      "saturation.saturated.trips");
  const std::uint64_t trips_before = global_trips.Value();

  int events = 0;
  detector.Subscribe([&](const telemetry::ConditionEvent&) { ++events; });

  // Synthetic collapse: each tick completes fewer operations than the last
  // while the wait p99 climbs orders of magnitude -- the "more waiters, less
  // work" signature.  dt = 1 ms per tick keeps the mean rate far above the
  // idle floor.
  const std::uint64_t counts[] = {4000, 3400, 2800, 2200, 1600, 1100, 700,
                                  400};
  const std::uint64_t waits[] = {1u << 10, 1u << 10, 1u << 11, 1u << 12,
                                 1u << 14, 1u << 16, 1u << 19, 1u << 22};
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::uint64_t n = 0; n < counts[i]; ++n) {
      wait.Record(0, waits[i]);
    }
    sampler.Tick((static_cast<std::uint64_t>(i) + 1) * 1'000'000);
    detector.Evaluate();
  }

  EXPECT_TRUE(detector.Active(Condition::kThroughputCollapse));
  EXPECT_TRUE(detector.Active(Condition::kWaitSpike));
  EXPECT_TRUE(detector.Active(Condition::kSaturated));
  EXPECT_GE(detector.Trips(Condition::kSaturated), 1u);
  EXPECT_GE(global_trips.Value(), trips_before + 1);  // exporter-visible
  EXPECT_GE(events, 1);                               // subscriber fired
}

TEST(Saturation, UniformLowContentionDoesNotTrip) {
  Registry registry;
  auto& wait = registry.GetHistogram("locktable.wait_ns");
  Sampler sampler(&registry, SamplerOptions{.capacity = 32});
  SaturationDetector detector(sampler, SaturationOptions{.window = 8});

  XorShift64 rng = XorShift64::FromSeed(7);
  for (std::uint64_t i = 1; i <= 16; ++i) {
    // Steady throughput (+-5%) and a flat wait distribution.
    const std::uint64_t n = 3800 + rng.NextBelow(400);
    for (std::uint64_t k = 0; k < n; ++k) {
      wait.Record(0, 500 + rng.NextBelow(1500));
    }
    sampler.Tick(i * 1'000'000);
    detector.Evaluate();
    EXPECT_FALSE(detector.Active(Condition::kThroughputCollapse));
    EXPECT_FALSE(detector.Active(Condition::kWaitSpike));
  }
  EXPECT_EQ(detector.Trips(Condition::kThroughputCollapse), 0u);
  EXPECT_EQ(detector.Trips(Condition::kWaitSpike), 0u);
  EXPECT_EQ(detector.Trips(Condition::kSaturated), 0u);
}

// The window median must be the true median.  On even windows the old
// upper-middle pick (sorted[n/2]) sat on the spiking half of the window, so
// the spike baseline inflated with the spike itself and the detector went
// blind exactly when the wait distribution was taking off.
TEST(Saturation, WindowMedianIsTrueMedian) {
  EXPECT_EQ(SaturationDetector::WindowMedian({}), 0u);
  EXPECT_EQ(SaturationDetector::WindowMedian({7}), 7u);
  EXPECT_EQ(SaturationDetector::WindowMedian({5, 1, 3}), 3u);  // odd: middle
  // Even: mean of the two middles, not the upper one.
  EXPECT_EQ(SaturationDetector::WindowMedian({1, 2, 3, 4}), 2u);
  EXPECT_EQ(SaturationDetector::WindowMedian({10, 10, 1000, 3990}), 505u);
}

TEST(Saturation, EvenWindowSpikeNotMaskedByUpperMiddleBias) {
  Registry registry;
  auto& wait = registry.GetHistogram("locktable.wait_ns");
  Sampler sampler(&registry, SamplerOptions{.capacity = 16});
  SaturationOptions opts;
  opts.window = 4;
  opts.wait_spike_factor = 3.0;
  SaturationDetector detector(sampler, opts);

  // Steady throughput, but the wait p99 takes off over the last two ticks.
  // Per-tick p99s (bucket upper bounds): {31, 31, 8191, 16383}.  True median
  // of the even window is (31 + 8191) / 2 = 4111, so the newest tick is a
  // ~4x spike and must trip at factor 3.  The old upper-middle pick used
  // 8191 as the baseline -- dragged up by the spike itself -- and stayed
  // silent (16383 < 3 * 8191).
  const std::uint64_t waits[] = {16, 16, 8191, 16383};
  for (std::size_t i = 0; i < 4; ++i) {
    for (int n = 0; n < 2000; ++n) {
      wait.Record(0, waits[i]);
    }
    sampler.Tick((static_cast<std::uint64_t>(i) + 1) * 1'000'000);
    detector.Evaluate();
  }
  EXPECT_TRUE(detector.Active(Condition::kWaitSpike));
  EXPECT_GE(detector.Trips(Condition::kWaitSpike), 1u);
}

// ---------------------------------------------------------------------------
// Determinism gate: a manually-ticked sampler driven on simulated time
// cannot shift the explored schedule.  Same structure as
// telemetry_overhead_test.cc: identical instrumented workloads, the only
// difference being the sampler ticking, must agree on the simulated clock
// and land within the simulator's address-layout noise floor on ops.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSimWindowNs = 2'000'000;
constexpr std::uint64_t kSimTickEveryNs = kSimWindowNs / 10;

harness::RunResult RunSimWorkload(Sampler* sampler) {
  apps::ShardedKvOptions o;
  o.key_range = 1 << 12;
  o.lock_stripes = 16;
  o.get_pct = 60;
  o.put_pct = 30;
  o.cs_compute_ns = 50;
  o.collect_latency = true;
  auto kv = std::make_shared<
      apps::ShardedKv<SimPlatform, locks::CnaLock<SimPlatform>>>(o);
  return harness::RunOnSim(
      sim::MachineConfig::TwoSocket(), /*threads=*/8, kSimWindowNs,
      [kv, sampler](int t) {
        XorShift64 rng =
            XorShift64::FromSeed(0x0f0f + static_cast<std::uint64_t>(t));
        if (t != 0 || sampler == nullptr) {
          return std::function<void()>(
              [kv, rng]() mutable { kv->MixedOp(rng); });
        }
        auto next = std::make_shared<std::uint64_t>(kSimTickEveryNs);
        return std::function<void()>([kv, rng, sampler, next]() mutable {
          kv->MixedOp(rng);
          const std::uint64_t now = sim::Machine::Active()->NowNs();
          if (now >= *next) {
            sampler->Tick(now);
            *next = now + kSimTickEveryNs;
          }
        });
      });
}

TEST(Sampler, SimScheduleUnperturbedBySampling) {
  telemetry::SetEnabled(true);
  const auto off = RunSimWorkload(nullptr);
  Sampler sampler(&Registry::Global(), SamplerOptions{.capacity = 64});
  const auto on = RunSimWorkload(&sampler);
  telemetry::SetEnabled(false);

  ASSERT_GT(off.total_ops, 0u);
  ASSERT_GT(on.total_ops, 0u);
  EXPECT_GT(sampler.ticks(), 0u);  // the sampled run really sampled
  EXPECT_GT(sampler.CounterRate("locktable.wait_ns"), 0.0);

  EXPECT_EQ(on.duration_ns, off.duration_ns)
      << "sampling must not change the simulated clock";
  const double ratio = static_cast<double>(on.total_ops) /
                       static_cast<double>(off.total_ops);
  EXPECT_GE(ratio, 0.95) << "sampler-on ops " << on.total_ops
                         << " vs sampler-off ops " << off.total_ops;
  EXPECT_LE(ratio, 1.05);
}

// ---------------------------------------------------------------------------
// HTTP endpoint round trip.
// ---------------------------------------------------------------------------

std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Serve, ScrapeRoundTrip) {
  telemetry::SetEnabled(true);
  Registry::Global().GetCounter("serve_test.ops").Add(5);
  Sampler sampler(&Registry::Global(), SamplerOptions{.capacity = 8});
  sampler.Tick(1);
  sampler.Tick(2);

  telemetry::TelemetryServer server;
  ASSERT_TRUE(server.Start({.port = 0, .sampler = &sampler}));
  ASSERT_GT(server.port(), 0);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.find("cna_serve_test_ops"), std::string::npos);

  const std::string series = HttpGet(server.port(), "/series");
  EXPECT_NE(series.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(series.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(series.find("\"ticks\":2"), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/nonesuch").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_GE(server.requests_served(), 4u);

  server.Stop();
  EXPECT_FALSE(server.running());
  telemetry::SetEnabled(false);
}

// A client that connects and sends nothing must not wedge the endpoint: the
// accept loop is a single thread, so before the receive timeout existed this
// test hung forever -- the silent connection parked HandleConnection in
// recv() and the /healthz probe never got accepted.
TEST(Serve, SilentClientCannotStarveHealthz) {
  telemetry::TelemetryServer server;
  ASSERT_TRUE(server.Start({.port = 0, .recv_timeout_ms = 100}));
  ASSERT_GT(server.port(), 0);

  // Connect and go silent.  The server's accept loop picks this connection
  // up first and must abandon it after the timeout.
  const int silent = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(silent, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // A well-formed request issued while the silent connection is pending must
  // still be served (after at most the receive timeout).
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("ok"), std::string::npos);

  ::close(silent);
  server.Stop();
}

TEST(Serve, SeriesWithoutSamplerIs404) {
  telemetry::TelemetryServer server;
  ASSERT_TRUE(server.Start({.port = 0}));
  EXPECT_NE(HttpGet(server.port(), "/series").find("HTTP/1.0 404"),
            std::string::npos);
  server.Stop();
}

// Parking activity must be scrapeable: a timed park records the parks
// counter and the parked_ns histogram, and both surface in /metrics under
// Prometheus naming.
TEST(Serve, ParkingCountersAppearInMetrics) {
  telemetry::SetEnabled(true);
  parking::ParkingLot<RealPlatform> lot;
  int key = 0;
  // Validate passes, nobody unparks: the wait ends by timeout, which still
  // counts as a completed park with a measured parked_ns.
  lot.ParkConditionally(&key, [] { return true; },
                        /*timeout_ns=*/1'000'000);

  telemetry::TelemetryServer server;
  ASSERT_TRUE(server.Start({.port = 0}));
  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("cna_parking_parks"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("cna_parking_parked_ns"), std::string::npos)
      << metrics;
  server.Stop();
  telemetry::SetEnabled(false);
}

// Every route -- including 404s -- must send Content-Type and
// Content-Length, so curl/Prometheus/browsers never block on a missing
// framing header.  Content-Length is also checked against the actual body.
TEST(Serve, AllRoutesSendContentHeaders) {
  telemetry::SetEnabled(true);
  Sampler sampler(&Registry::Global(), SamplerOptions{.capacity = 8});
  sampler.Tick(1);
  telemetry::TelemetryServer server;
  ASSERT_TRUE(server.Start({.port = 0, .sampler = &sampler}));

  const char* routes[] = {"/",        "/healthz",      "/metrics",
                          "/json",    "/lockstat",     "/series",
                          "/lockdep", "/lockdep.dot",  "/lockdep.folded",
                          "/nonesuch"};
  for (const char* route : routes) {
    const std::string resp = HttpGet(server.port(), route);
    ASSERT_EQ(resp.rfind("HTTP/1.0 ", 0), 0u) << route;
    const std::size_t header_end = resp.find("\r\n\r\n");
    ASSERT_NE(header_end, std::string::npos) << route;
    const std::string head = resp.substr(0, header_end);
    EXPECT_NE(head.find("\r\nContent-Type: "), std::string::npos) << route;
    const std::size_t cl = head.find("\r\nContent-Length: ");
    ASSERT_NE(cl, std::string::npos) << route;
    const std::size_t body_size = resp.size() - (header_end + 4);
    EXPECT_EQ(std::stoull(head.substr(cl + 18)), body_size) << route;
  }
  // Spot-check content types: Prometheus text for /metrics, Graphviz for
  // the lock-order digraph.
  EXPECT_NE(HttpGet(server.port(), "/metrics")
                .find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/lockdep.dot")
                .find("Content-Type: text/vnd.graphviz"),
            std::string::npos);
  server.Stop();
  telemetry::SetEnabled(false);
}

// ---------------------------------------------------------------------------
// C surface round trip.
// ---------------------------------------------------------------------------

TEST(CApi, SamplerAndServeRoundTrip) {
  telemetry::SetEnabled(true);
  cna_sampler_rebaseline();
  Registry::Global().GetCounter("capi_test.ops").Add(100);
  cna_sampler_tick(1'000'000);
  Registry::Global().GetCounter("capi_test.ops").Add(100);
  cna_sampler_tick(2'000'000);
  EXPECT_GE(cna_sampler_ticks(), 2u);
  EXPECT_GT(cna_sampler_rate("capi_test.ops", 0), 0.0);

  char* series = cna_sampler_series_json(0);
  ASSERT_NE(series, nullptr);
  EXPECT_NE(std::string(series).find("\"schema_version\":1"),
            std::string::npos);
  std::free(series);

  const int port = cna_telemetry_serve_start(0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(cna_telemetry_serve_start(0), port);  // idempotent while running
  const std::string metrics =
      HttpGet(static_cast<std::uint16_t>(port), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("cna_capi_test_ops"), std::string::npos);
  EXPECT_GE(cna_telemetry_serve_requests(), 1u);
  cna_telemetry_serve_stop();
  cna_sampler_stop();
  telemetry::SetEnabled(false);
}

}  // namespace
}  // namespace cna
