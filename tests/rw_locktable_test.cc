// RwLockTable subsystem tests: namespace geometry, reader/writer surfaces,
// guards, per-stripe read/write statistics, the registry factories
// (MakeRwLockTable, core::SharedMutex, core::ShardedSharedMutex), and the C
// surface (cna_rwlock_*, cna_rwlocktable_*) round-trip -- including the
// real-thread stress the CI ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <thread>
#include <vector>

#include "apps/sharded_kv.h"
#include "core/any_rwlock_table.h"
#include "core/pthread_api.h"
#include "core/registry.h"
#include "locks/cna_rwlock.h"
#include "locktable/rw_lock_table.h"
#include "platform/real_platform.h"

namespace cna {
namespace {

using RealRw = locks::CnaRwLock<RealPlatform>;
using RealRwCompact = locks::CnaRwLock<RealPlatform, locks::CnaRwCompactConfig>;
using Table = locktable::RwLockTable<RealPlatform, RealRw>;
using CompactTable = locktable::RwLockTable<RealPlatform, RealRwCompact>;

// ---------- Geometry ----------

TEST(RwLockTable, StripeCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(CompactTable({.stripes = 0}).stripes(), 1u);
  EXPECT_EQ(CompactTable({.stripes = 17}).stripes(), 32u);
  EXPECT_EQ(CompactTable({.stripes = 1000}).stripes(), 1024u);
}

// The compact rwlock keeps the mutex table's headline economics: one 8-byte
// word per stripe, so a million-stripe read-write namespace is 8 MiB.
TEST(RwLockTable, CompactLayoutIsOneWordPerStripe) {
  CompactTable table({.stripes = 1u << 20});
  EXPECT_EQ(CompactTable::PerStripeStateBytes(), 8u);
  EXPECT_EQ(table.LockStateBytes(), (1u << 20) * 8u);
  // And it is usable, not just allocatable.
  table.LockShared(123456789);
  table.UnlockShared(123456789);
  table.LockExclusive(42);
  table.UnlockExclusive(42);
}

TEST(RwLockTable, StripeOfMatchesMutexTableHash) {
  CompactTable rw({.stripes = 64});
  locktable::LockTable<RealPlatform, locks::CnaLock<RealPlatform>> mx(
      {.stripes = 64});
  for (std::uint64_t key : {0ull, 1ull, 42ull, ~0ull}) {
    EXPECT_EQ(rw.StripeOf(key), mx.StripeOf(key));
  }
}

// ---------- Reader/writer surface ----------

TEST(RwLockTable, SharedAndExclusiveRoundTrip) {
  Table table({.stripes = 16});
  table.LockShared(7);
  EXPECT_EQ(table.SharedHeldByThisContext(), 1u);
  table.UnlockShared(7);
  table.LockExclusive(7);
  EXPECT_EQ(table.ExclusiveHeldByThisContext(), 1u);
  table.UnlockExclusive(7);
  EXPECT_EQ(table.SharedHeldByThisContext(), 0u);
  EXPECT_EQ(table.ExclusiveHeldByThisContext(), 0u);
}

TEST(RwLockTable, ReadersOfOneStripeShare) {
  Table table({.stripes = 4});
  ASSERT_TRUE(table.TryLockShared(1));
  EXPECT_TRUE(table.TryLockShared(1));  // second reader admitted
  EXPECT_FALSE(table.TryLockExclusive(1));
  table.UnlockShared(1);
  table.UnlockShared(1);
  EXPECT_TRUE(table.TryLockExclusive(1));
  EXPECT_FALSE(table.TryLockShared(1));  // writer blocks readers
  table.UnlockExclusive(1);
}

TEST(RwLockTable, UnifiedUnlockDispatchesOnHeldMode) {
  Table table({.stripes = 16});
  table.LockShared(3);
  table.Unlock(3);  // releases the shared hold
  EXPECT_EQ(table.SharedHeldByThisContext(), 0u);
  table.LockExclusive(3);
  table.Unlock(3);  // releases the exclusive hold
  EXPECT_EQ(table.ExclusiveHeldByThisContext(), 0u);
  EXPECT_THROW(table.Unlock(3), std::logic_error);  // held in neither mode
}

TEST(RwLockTable, GuardsAreRaii) {
  Table table({.stripes = 16});
  {
    Table::ReadGuard r(table, 9);
    EXPECT_EQ(table.SharedHeldByThisContext(), 1u);
    EXPECT_EQ(r.stripe(), table.StripeOf(9));
  }
  {
    Table::WriteGuard w(table, 9);
    EXPECT_EQ(table.ExclusiveHeldByThisContext(), 1u);
  }
  EXPECT_EQ(table.SharedHeldByThisContext(), 0u);
  EXPECT_EQ(table.ExclusiveHeldByThisContext(), 0u);
}

TEST(RwLockTable, MultiGuardIsExclusiveAscendingDeduplicated) {
  Table table({.stripes = 1024});
  Table::MultiGuard g(table, {11, 22, 33, 11});
  const auto stripes = g.stripes();
  EXPECT_EQ(table.ExclusiveHeldByThisContext(), g.size());
  for (std::size_t i = 1; i < stripes.size(); ++i) {
    EXPECT_LT(stripes[i - 1], stripes[i]);
  }
}

TEST(RwLockTable, CheckedUnlockKeysIsAllOrNothing) {
  Table table({.stripes = 1024});
  std::uint64_t held = 1;
  std::uint64_t unheld = 2;
  while (table.StripeOf(held) == table.StripeOf(unheld)) {
    ++unheld;
  }
  table.LockExclusive(held);
  const std::uint64_t keys[2] = {unheld, held};
  EXPECT_THROW(table.UnlockKeys(keys, 2), std::logic_error);
  EXPECT_EQ(table.ExclusiveHeldByThisContext(), 1u);
  // A stripe held only in *shared* mode does not satisfy the exclusive check.
  table.UnlockExclusive(held);
  table.LockShared(held);
  const std::uint64_t one[1] = {held};
  EXPECT_THROW(table.UnlockKeys(one, 1), std::logic_error);
  table.UnlockShared(held);
}

// ---------- Statistics ----------

TEST(RwLockTableStats, CountsReadsWritesAndOccupancy) {
  Table table({.stripes = 16, .collect_stats = true});
  ASSERT_TRUE(table.stats_enabled());
  for (int i = 0; i < 8; ++i) {
    Table::ReadGuard g(table, 1);
  }
  for (int i = 0; i < 2; ++i) {
    Table::WriteGuard g(table, 1);
  }
  const auto s = table.StatsSummary();
  EXPECT_EQ(s.read_acquisitions, 8u);
  EXPECT_EQ(s.write_acquisitions, 2u);
  EXPECT_EQ(s.writer_waits, 0u);  // single-threaded: nothing to wait for
  EXPECT_EQ(s.TotalAcquisitions(), 10u);
  EXPECT_DOUBLE_EQ(s.ReadShare(), 0.8);
  EXPECT_EQ(s.occupied_stripes, 1u);
  EXPECT_EQ(s.max_stripe_acquisitions, 10u);
}

TEST(RwLockTableStats, WriterWaitsObservedUnderReaders) {
  Table table({.stripes = 1, .collect_stats = true});
  table.LockShared(0);
  std::thread writer([&] { Table::WriteGuard g(table, 0); });
  // Give the writer time to fail its probe and start waiting, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  table.UnlockShared(0);
  writer.join();
  const auto s = table.StatsSummary();
  EXPECT_EQ(s.write_acquisitions, 1u);
  EXPECT_EQ(s.writer_waits, 1u);  // the probe failed against our reader
}

// ---------- Real-thread stress (runs under TSan in CI) ----------

// Writers keep per-key values even outside their critical sections (odd
// while mid-update); readers assert they never observe an odd value.  Any
// reader/writer overlap on a stripe manifests as an odd observation; any
// writer/writer overlap as a lost increment.
TEST(RwLockTableStress, ReadersNeverObserveWritersMidUpdate) {
  CompactTable table({.stripes = 8});
  constexpr std::uint64_t kKeys = 32;
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kIters = 2000;
  std::vector<std::uint64_t> values(kKeys, 0);
  std::atomic<bool> odd_seen{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t x = static_cast<std::uint64_t>(t) * 7919 + 1;
      for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % kKeys;
        CompactTable::WriteGuard g(table, key);
        values[key] += 1;  // odd: update in progress
        std::this_thread::yield();
        values[key] += 1;  // even again
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t x = static_cast<std::uint64_t>(t) * 104729 + 3;
      for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % kKeys;
        CompactTable::ReadGuard g(table, key);
        if (values[key] % 2 != 0) {
          odd_seen.store(true);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(odd_seen.load());
  std::uint64_t total = 0;
  for (std::uint64_t v : values) {
    total += v;
  }
  EXPECT_EQ(total, 2u * kWriters * kIters);  // no lost writer updates
}

// The read-mostly KV substrate over real threads: value conservation across
// concurrent Add()s while Get()s run against the same stripes.
TEST(RwLockTableStress, RwShardedKvKeepsTotals) {
  apps::RwShardedKvOptions o;
  o.key_range = 64;
  o.lock_stripes = 8;
  o.cs_compute_ns = 0;
  apps::RwShardedKv<RealPlatform, RealRw> kv(o);
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng = XorShift64::FromSeed(40 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key = rng.NextBelow(o.key_range);
        if (rng.Next() % 4 == 0) {
          kv.Add(key, 1);
        } else {
          (void)kv.Get(key);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  // Replay the deterministic RNG streams to count how many Adds ran: every
  // one of them must have landed exactly once (no lost updates under
  // concurrent readers).
  std::uint64_t expected_adds = 0;
  for (int t = 0; t < kThreads; ++t) {
    XorShift64 rng = XorShift64::FromSeed(40 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kIters; ++i) {
      (void)rng.NextBelow(o.key_range);
      expected_adds += rng.Next() % 4 == 0 ? 1 : 0;
    }
  }
  EXPECT_EQ(kv.TotalValue(), expected_adds);
  EXPECT_GT(expected_adds, 0u);
}

// ---------- Registry factories ----------

TEST(MakeRwLockTable, EveryKindBuildsAndRoundTrips) {
  for (auto kind : core::AllRwLockKinds()) {
    auto table = core::MakeRwLockTable<RealPlatform>(
        kind, locktable::LockTableOptions{.stripes = 8});
    ASSERT_NE(table, nullptr) << core::RwLockKindName(kind);
    EXPECT_EQ(table->Stripes(), 8u);
    EXPECT_EQ(table->Name(), core::RwLockKindName(kind));
    table->LockShared(42);
    table->UnlockShared(42);
    table->LockExclusive(42);
    table->Unlock(42);  // unified release of the exclusive hold
    const std::uint64_t keys[3] = {1, 2, 3};
    table->LockMany(keys, 3);
    table->UnlockMany(keys, 3);
    EXPECT_GE(table->LockStateBytes(),
              table->Stripes() * table->PerStripeStateBytes());
  }
}

TEST(SharedMutex, ByNameAndByKind) {
  core::SharedMutex by_kind(core::RwLockKind::kCnaRw);
  core::SharedMutex by_name("cna-rw-compact");
  EXPECT_EQ(by_name.name(), "cna-rw-compact");
  EXPECT_EQ(by_name.state_bytes(), 8u);
  by_kind.lock_shared();
  EXPECT_TRUE(by_kind.try_lock_shared());
  by_kind.unlock_shared();
  by_kind.unlock_shared();
  by_kind.lock();
  by_kind.unlock();
  EXPECT_THROW(core::SharedMutex("no-such-rwlock"), std::invalid_argument);
}

TEST(ShardedSharedMutex, ConcurrentReadersSerializedWriters) {
  core::ShardedSharedMutex table("cna-rw", 16);
  EXPECT_EQ(table.stripes(), 16u);
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  constexpr std::uint64_t kKeys = 16;
  std::vector<std::uint64_t> counters(kKeys, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t x = static_cast<std::uint64_t>(t) + 1;
      for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % kKeys;
        if (x % 3 == 0) {
          table.lock(key);
          ++counters[key];
          table.unlock(key);
        } else {
          table.lock_shared(key);
          (void)counters[key];
          table.unlock_shared(key);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counters) {
    total += c;
  }
  EXPECT_GT(total, 0u);  // and no lost exclusive increments:
  std::uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    std::uint64_t x = static_cast<std::uint64_t>(t) + 1;
    for (int i = 0; i < kIters; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      expected += x % 3 == 0 ? 1 : 0;
    }
  }
  EXPECT_EQ(total, expected);
}

// ---------- C surface ----------

TEST(CRwLockApi, CreateByNameRoundTrip) {
  cna_rwlock_t* rw = cna_rwlock_create("cna-rw-compact");
  ASSERT_NE(rw, nullptr);
  EXPECT_EQ(cna_rwlock_state_bytes(rw), 8u);
  // Shared recursion, pthread-style unified unlock.
  EXPECT_EQ(cna_rwlock_rdlock(rw), 0);
  EXPECT_EQ(cna_rwlock_tryrdlock(rw), 0);
  EXPECT_EQ(cna_rwlock_trywrlock(rw), EBUSY);  // readers in
  EXPECT_EQ(cna_rwlock_unlock(rw), 0);
  EXPECT_EQ(cna_rwlock_unlock(rw), 0);
  EXPECT_EQ(cna_rwlock_wrlock(rw), 0);
  EXPECT_EQ(cna_rwlock_tryrdlock(rw), EBUSY);  // writer in
  EXPECT_EQ(cna_rwlock_unlock(rw), 0);
  EXPECT_EQ(cna_rwlock_unlock(rw), EPERM);  // nothing held
  cna_rwlock_destroy(rw);
}

TEST(CRwLockApi, RejectsUnknownNamesAndNulls) {
  EXPECT_EQ(cna_rwlock_create("no-such-rwlock"), nullptr);
  EXPECT_EQ(cna_rwlock_create(nullptr), nullptr);
  EXPECT_EQ(cna_rwlock_rdlock(nullptr), EINVAL);
  EXPECT_EQ(cna_rwlock_wrlock(nullptr), EINVAL);
  EXPECT_EQ(cna_rwlock_unlock(nullptr), EINVAL);
  EXPECT_EQ(cna_rwlock_state_bytes(nullptr), 0u);
  cna_rwlock_destroy(nullptr);  // must be a no-op
}

TEST(CRwLockTableApi, CreateByNameRoundTrip) {
  cna_rwlocktable_t* table = cna_rwlocktable_create("cna-rw-compact", 100);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(cna_rwlocktable_stripes(table), 128u);  // rounded up to 2^7
  EXPECT_EQ(cna_rwlocktable_state_bytes(table), 128u * 8u);
  EXPECT_EQ(cna_rwlocktable_rdlock(table, 7), 0);
  EXPECT_EQ(cna_rwlocktable_rdlock(table, 7), 0);     // readers share
  EXPECT_EQ(cna_rwlocktable_trywrlock(table, 7), EBUSY);
  EXPECT_EQ(cna_rwlocktable_unlock(table, 7), 0);
  EXPECT_EQ(cna_rwlocktable_unlock(table, 7), 0);
  EXPECT_EQ(cna_rwlocktable_wrlock(table, 7), 0);
  EXPECT_EQ(cna_rwlocktable_tryrdlock(table, 7), EBUSY);
  EXPECT_EQ(cna_rwlocktable_unlock(table, 7), 0);
  EXPECT_EQ(cna_rwlocktable_unlock(table, 7), EPERM);
  cna_rwlocktable_destroy(table);
}

TEST(CRwLockTableApi, MultiKeyExclusiveTransactions) {
  cna_rwlocktable_t* table = cna_rwlocktable_create_default(16);
  ASSERT_NE(table, nullptr);
  const uint64_t keys[4] = {1, 2, 3, 1ull << 40};
  EXPECT_EQ(cna_rwlocktable_wrlock_many(table, keys, 4), 0);
  EXPECT_EQ(cna_rwlocktable_unlock_many(table, keys, 4), 0);
  // Partial sets release nothing.
  ASSERT_EQ(cna_rwlocktable_wrlock(table, 1), 0);
  const uint64_t mixed[2] = {1, 2};
  EXPECT_EQ(cna_rwlocktable_unlock_many(table, mixed, 2), EPERM);
  EXPECT_EQ(cna_rwlocktable_unlock(table, 1), 0);
  cna_rwlocktable_destroy(table);
}

TEST(CRwLockTableApi, CrossThreadReadersShareWritersExclude) {
  cna_rwlocktable_t* table = cna_rwlocktable_create("cna-rw", 4);
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(cna_rwlocktable_rdlock(table, 0), 0);
  int rd_result = -1;
  int wr_result = -1;
  std::thread worker([&] {
    rd_result = cna_rwlocktable_tryrdlock(table, 0);  // readers share
    if (rd_result == 0) {
      cna_rwlocktable_unlock(table, 0);
    }
    wr_result = cna_rwlocktable_trywrlock(table, 0);  // writer excluded
  });
  worker.join();
  EXPECT_EQ(rd_result, 0);
  EXPECT_EQ(wr_result, EBUSY);
  EXPECT_EQ(cna_rwlocktable_unlock(table, 0), 0);
  cna_rwlocktable_destroy(table);
}

TEST(CRwLockTableApi, RejectsUnknownNamesAndNulls) {
  EXPECT_EQ(cna_rwlocktable_create("no-such-rwlock", 8), nullptr);
  EXPECT_EQ(cna_rwlocktable_create(nullptr, 8), nullptr);
  EXPECT_EQ(cna_rwlocktable_create("cna-rw", size_t{1} << 40), nullptr);
  EXPECT_EQ(cna_rwlocktable_rdlock(nullptr, 1), EINVAL);
  EXPECT_EQ(cna_rwlocktable_wrlock(nullptr, 1), EINVAL);
  EXPECT_EQ(cna_rwlocktable_unlock(nullptr, 1), EINVAL);
  EXPECT_EQ(cna_rwlocktable_wrlock_many(nullptr, nullptr, 0), EINVAL);
  EXPECT_EQ(cna_rwlocktable_stripes(nullptr), 0u);
  EXPECT_EQ(cna_rwlocktable_state_bytes(nullptr), 0u);
  cna_rwlocktable_destroy(nullptr);  // must be a no-op
}

}  // namespace
}  // namespace cna
