// Simulator-based schedule exploration of the flat-combining path
// (src/locktable/combining.h).
//
// The combining layer's contract is linearizability of applied closures:
// every submitted operation is applied exactly once, under its stripe's
// lock, and its completion (Apply returning / Future::Wait unblocking) is
// observed only after the application.  The deterministic machine lets us
// check those invariants across explored interleavings -- different seeds
// and arrival jitters produce different combiner/waiter schedules, including
// combiner-release/new-combiner races and budget cutoffs mid-stream.
// Combiner crashes mid-drain are out of scope (closures may not throw
// unhandled, and fibers do not die).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "locks/cna.h"
#include "locktable/combining.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using SimCombining =
    locktable::CombiningTable<SimPlatform, locks::CnaLock<SimPlatform>>;

sim::MachineConfig SmallMachine(std::uint64_t seed) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 8);
  cfg.seed = seed;
  return cfg;
}

// --- Exactly-once + completion-after-application + mutual exclusion ---
//
// Shared plain (non-atomic) bookkeeping mutated inside closures: fibers only
// switch at simulated events, so the bookkeeping itself is race-free while
// AdvanceLocalWork inside the closures forces interleaving at every point
// the combining protocol permits it.

struct CombiningProbe {
  // applications[t][i]: how many times fiber t's i-th operation ran.
  std::vector<std::vector<int>> applications;
  // Ops observed per stripe (incremented inside the closure, i.e. under the
  // stripe lock).
  std::vector<std::uint64_t> ops_per_stripe;
  // Concurrency probe: closures of one stripe must never overlap.
  std::vector<int> in_section;
  bool overlap_seen = false;
  // A closure observed as completed (Apply returned) before it ran.
  bool completion_before_application = false;
  // From the stats summary: ops a combiner ran on another fiber's behalf.
  std::uint64_t combined_ops = 0;
};

CombiningProbe RunExploration(std::uint64_t seed, int fibers, int iters,
                              std::size_t stripes, std::size_t budget,
                              std::uint64_t key_spread) {
  sim::Machine m(SmallMachine(seed));
  SimCombining table({.stripes = stripes,
                      .collect_stats = true,
                      .combining_budget = budget});
  CombiningProbe probe;
  probe.applications.assign(static_cast<std::size_t>(fibers),
                            std::vector<int>(static_cast<std::size_t>(iters), 0));
  probe.ops_per_stripe.assign(table.stripes(), 0);
  probe.in_section.assign(table.stripes(), 0);
  for (int t = 0; t < fibers; ++t) {
    m.Spawn([&, t] {
      // Jittered arrival so schedules differ across fibers and seeds.
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 157 + 1);
      for (int i = 0; i < iters; ++i) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(t) * 31 + static_cast<std::uint64_t>(i)) %
            key_spread;
        const std::size_t s = table.StripeOf(key);
        table.Apply(key, [&probe, t, i, s] {
          probe.in_section[s]++;
          if (probe.in_section[s] > 1) {
            probe.overlap_seen = true;
          }
          sim::Machine::Active()->AdvanceLocalWork(40);
          probe.applications[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(i)]++;
          probe.ops_per_stripe[s]++;
          probe.in_section[s]--;
        });
        // Completion: Apply returned, so the op must have run exactly once
        // by now -- and never again later (checked after Run()).
        if (probe.applications[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(i)] != 1) {
          probe.completion_before_application = true;
        }
        sim::Machine::Active()->AdvanceLocalWork(
            60 + sim::Machine::Active()->Random() % 200);
      }
    });
  }
  m.Run();  // throws on deadlock

  // Cross-check the stats against the ground truth counted in-closure.
  const auto summary = table.CombiningSummary();
  EXPECT_EQ(summary.TotalOps(),
            static_cast<std::uint64_t>(fibers) * static_cast<std::uint64_t>(iters))
      << "seed " << seed;
  std::uint64_t per_stripe_total = 0;
  for (std::size_t s = 0; s < table.stripes(); ++s) {
    const auto* c = table.CombiningStripeStats(s);
    EXPECT_NE(c, nullptr);
    if (c == nullptr) {
      continue;
    }
    EXPECT_EQ(c->pass_through.load() + c->combined.load(),
              probe.ops_per_stripe[s])
        << "seed " << seed << " stripe " << s;
    per_stripe_total += c->pass_through.load() + c->combined.load();
  }
  EXPECT_EQ(per_stripe_total, summary.TotalOps()) << "seed " << seed;
  probe.combined_ops = summary.combined;
  return probe;
}

TEST(CombiningSim, ScheduleExplorationExactlyOnce) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    auto probe = RunExploration(seed, /*fibers=*/8, /*iters=*/40,
                                /*stripes=*/4, /*budget=*/64,
                                /*key_spread=*/8);
    EXPECT_FALSE(probe.overlap_seen) << "seed " << seed;
    EXPECT_FALSE(probe.completion_before_application) << "seed " << seed;
    for (const auto& per_fiber : probe.applications) {
      for (int count : per_fiber) {
        ASSERT_EQ(count, 1) << "seed " << seed;
      }
    }
  }
}

// With everything funneled onto one stripe, combining must actually happen
// on some schedule (otherwise the layer degenerated into a plain lock), and
// the invariants must hold through combiner-release/new-combiner handoffs.
TEST(CombiningSim, HotStripeHandoffRaces) {
  std::uint64_t ops_total = 0;
  std::uint64_t combined_total = 0;
  for (std::uint64_t seed : {3ull, 11ull, 77ull, 2026ull}) {
    auto probe = RunExploration(seed, /*fibers=*/10, /*iters=*/50,
                                /*stripes=*/1, /*budget=*/8,
                                /*key_spread=*/1);
    EXPECT_FALSE(probe.overlap_seen) << "seed " << seed;
    EXPECT_FALSE(probe.completion_before_application) << "seed " << seed;
    for (const auto& per_fiber : probe.applications) {
      for (int count : per_fiber) {
        ASSERT_EQ(count, 1) << "seed " << seed;
      }
    }
    EXPECT_EQ(probe.ops_per_stripe[0], 10u * 50u) << "seed " << seed;
    ops_total += probe.ops_per_stripe[0];
    combined_total += probe.combined_ops;
  }
  EXPECT_EQ(ops_total, 4u * 10u * 50u);
  // Combining must actually happen on some schedule -- otherwise the layer
  // degenerated into a plain lock.
  EXPECT_GT(combined_total, 0u);
}

// The combining budget bounds servitude but may never strand a record: with
// a budget of 1 and a hot stripe, cutoffs must occur and every operation
// must still be applied exactly once (leftover records are re-published and
// either picked up by the next combiner or self-served by their publisher's
// try-lock).
TEST(CombiningSim, BudgetCutoffNeverStrandsRecords) {
  std::uint64_t cutoffs = 0;
  for (std::uint64_t seed : {5ull, 21ull, 99ull}) {
    sim::Machine m(SmallMachine(seed));
    SimCombining table({.stripes = 1,
                        .collect_stats = true,
                        .combining_budget = 1});
    constexpr int kFibers = 8;
    constexpr int kIters = 30;
    std::vector<int> done(kFibers, 0);
    for (int t = 0; t < kFibers; ++t) {
      m.Spawn([&, t] {
        sim::Machine::Active()->AdvanceLocalWork(
            static_cast<std::uint64_t>(t) * 97 + 1);
        for (int i = 0; i < kIters; ++i) {
          table.Apply(0, [&done, t] {
            sim::Machine::Active()->AdvanceLocalWork(80);
            done[static_cast<std::size_t>(t)]++;
          });
        }
      });
    }
    m.Run();
    for (int t = 0; t < kFibers; ++t) {
      EXPECT_EQ(done[static_cast<std::size_t>(t)], kIters)
          << "seed " << seed << " fiber " << t;
    }
    const auto summary = table.CombiningSummary();
    EXPECT_EQ(summary.TotalOps(),
              static_cast<std::uint64_t>(kFibers) * kIters);
    cutoffs += summary.budget_cutoffs;
  }
  EXPECT_GT(cutoffs, 0u);
}

// Acquiring a stripe whose publication list is empty is the do-nothing case:
// the fast path applies the caller's own closure, the drain finds nothing,
// and no record is ever allocated.
TEST(CombiningSim, EmptyPublicationListAcquisition) {
  sim::Machine m(SmallMachine(1));
  SimCombining table({.stripes = 4, .collect_stats = true});
  int runs = 0;
  std::size_t pending_during = 1;
  m.Spawn([&] {
    table.Apply(123, [&] { ++runs; });
    pending_during = table.PendingInThisContext();
    {
      SimCombining::Guard guard(table, 123);  // empty-list drain on release
      sim::Machine::Active()->AdvanceLocalWork(50);
    }
    table.Apply(123, [&] { ++runs; });
  });
  m.Run();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(pending_during, 0u);  // fast path publishes no record
  const auto summary = table.CombiningSummary();
  EXPECT_EQ(summary.pass_through, 2u);
  EXPECT_EQ(summary.combined, 0u);
  EXPECT_EQ(summary.budget_cutoffs, 0u);
}

// NUMA-aware drain order: a socket-0 Guard holder accumulates publications
// from both sockets, and its release-drain must apply the socket-0 records
// first (mirroring CNA's secondary-queue policy), each class in arrival
// order.
TEST(CombiningSim, DrainServesSocketLocalRecordsFirst) {
  sim::Machine m(SmallMachine(1));
  SimCombining table({.stripes = 1});
  std::vector<int> order;
  // Fiber 0 -> socket 0 (scatter placement) holds the stripe while fibers
  // 1..4 (sockets 1, 0, 1, 0) publish in id order.
  m.Spawn([&] {
    SimCombining::Guard guard(table, 0);
    sim::Machine::Active()->AdvanceLocalWork(100'000);
  });
  for (int t = 1; t <= 4; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 500);
      table.Apply(0, [&order, t] { order.push_back(t); });
    });
  }
  m.Run();
  // Socket-0 publishers (fibers 2, 4) before socket-1 publishers (1, 3).
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
}

// Submit/Future: completion is observed only after application, futures may
// be waited in any order (the record pool detaches the exact record), and a
// dropped future still waits in its destructor.
TEST(CombiningSim, SubmitFuturesCompleteInAnyOrder) {
  sim::Machine m(SmallMachine(9));
  SimCombining table({.stripes = 2, .collect_stats = true});
  std::vector<int> applied(3, 0);
  bool all_ready_after_wait = false;
  m.Spawn([&] {
    auto f0 = table.Submit(0, [&applied] { applied[0]++; });
    auto f1 = table.Submit(1, [&applied] { applied[1]++; });
    auto f2 = table.Submit(2, [&applied] { applied[2]++; });
    // Wait in reverse submission order.
    f2.Wait();
    EXPECT_EQ(applied[2], 1);
    f0.Wait();
    EXPECT_EQ(applied[0], 1);
    f1.Wait();
    all_ready_after_wait = f0.Ready() && f1.Ready() && f2.Ready();
    {
      auto dropped = table.Submit(3, [&applied] { applied[0] += 10; });
      // ~Future waits.
    }
    EXPECT_EQ(applied[0], 11);
  });
  // A second fiber combines concurrently on the same stripes.
  m.Spawn([&] {
    for (int i = 0; i < 20; ++i) {
      table.Apply(static_cast<std::uint64_t>(i), [] {});
    }
  });
  m.Run();
  EXPECT_TRUE(all_ready_after_wait);
  EXPECT_EQ(applied[0], 11);
  EXPECT_EQ(applied[1], 1);
  EXPECT_EQ(applied[2], 1);
}

// ApplyBatch groups keys by stripe: every key's closure runs exactly once
// per occurrence (duplicates included), one acquisition per distinct stripe.
TEST(CombiningSim, ApplyBatchAppliesEveryKeyOncePerOccurrence) {
  sim::Machine m(SmallMachine(4));
  SimCombining table({.stripes = 4, .collect_stats = true});
  std::vector<int> counts(16, 0);
  m.Spawn([&] {
    const std::uint64_t keys[] = {3, 7, 3, 11, 15, 7, 3};
    table.ApplyBatch(keys, 7, [&counts](std::uint64_t key) {
      counts[static_cast<std::size_t>(key)]++;
    });
  });
  m.Run();
  EXPECT_EQ(counts[3], 3);
  EXPECT_EQ(counts[7], 2);
  EXPECT_EQ(counts[11], 1);
  EXPECT_EQ(counts[15], 1);
}

// Determinism: the same configuration and seed must replay the same
// schedule (the property the exploration suite's reproducibility rests on).
TEST(CombiningSim, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Machine m(SmallMachine(123));
    SimCombining table({.stripes = 2, .collect_stats = true});
    for (int t = 0; t < 6; ++t) {
      m.Spawn([&, t] {
        sim::Machine::Active()->AdvanceLocalWork(
            static_cast<std::uint64_t>(t) * 211 + 1);
        for (int i = 0; i < 40; ++i) {
          table.Apply(static_cast<std::uint64_t>(t % 2), [] {
            sim::Machine::Active()->AdvanceLocalWork(35);
          });
        }
      });
    }
    m.Run();
    const auto s = table.CombiningSummary();
    return std::pair<std::uint64_t, std::uint64_t>(m.FinalTimeNs(),
                                                   s.combined);
  };
  EXPECT_EQ(run(), run());
}

// Real-platform smoke of the same invariants, single-threaded: the template
// compiles and behaves over RealPlatform (the stress test covers real
// concurrency; this keeps the unit suite hermetic).
TEST(CombiningReal, SingleThreadFastPathAndBatch) {
  locktable::CombiningTable<RealPlatform, locks::CnaLock<RealPlatform>> table(
      {.stripes = 8, .collect_stats = true});
  std::uint64_t sum = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    table.Apply(k, [&sum, k] { sum += k; });
  }
  EXPECT_EQ(sum, 99u * 100u / 2);
  const std::uint64_t keys[] = {1, 2, 3, 4, 5};
  table.ApplyBatch(keys, 5, [&sum](std::uint64_t k) { sum += k; });
  EXPECT_EQ(sum, 99u * 100u / 2 + 15u);
  auto f = table.Submit(7, [&sum] { sum += 1000; });
  f.Wait();
  EXPECT_EQ(sum, 99u * 100u / 2 + 15u + 1000u);
  // A batch is one published op per *distinct* stripe of its key set.
  std::set<std::size_t> batch_stripes;
  for (std::uint64_t k : keys) {
    batch_stripes.insert(table.StripeOf(k));
  }
  const auto summary = table.CombiningSummary();
  EXPECT_EQ(summary.TotalOps(), 100u + batch_stripes.size() + 1u);
  EXPECT_EQ(summary.combined, 0u);  // single-threaded: all pass-through
}

// Unlock-without-lock is a checked error and must not touch the publication
// list: an erroneous unlocker may not execute other threads' pending
// closures (that is the stripe holder's exclusive right).
TEST(CombiningReal, UnlockWithoutLockThrowsBeforeDraining) {
  locktable::CombiningTable<RealPlatform, locks::CnaLock<RealPlatform>> table(
      {.stripes = 4});
  int applied = 0;
  auto f = table.Submit(9, [&applied] { ++applied; });
  EXPECT_THROW(table.Unlock(9), std::logic_error);
  EXPECT_EQ(applied, 0);  // the misuse drained nothing
  f.Wait();
  EXPECT_EQ(applied, 1);
  // Balanced lock/unlock still works, and unlocking twice throws again.
  table.Lock(9);
  table.Unlock(9);
  EXPECT_THROW(table.Unlock(9), std::logic_error);
}

}  // namespace
}  // namespace cna
