// Real-thread stress of the resizable lock table
// (src/locktable/resizable_lock_table.h): grow/shrink under load (this file
// runs in the CI TSan job's real-thread filter).
//
// Two invariants under concurrent resizing:
//  * Zero lost updates: plain per-key counters mutated only under the key's
//    stripe -- in whichever snapshot the acquisition landed -- sum to
//    exactly the operations issued, across any number of migrations.
//  * Acquisition accounting: every lock-step drain and every validation
//    retry is an acquisition somewhere, so over the table's lifetime
//      total_acquisitions == caller acquisitions + validation_retries
//                            + drained_stripes
//    (the resizable analogue of the combining table's
//    combined + pass_through == total_ops identity).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "core/pthread_api.h"
#include "core/registry.h"
#include "locks/cna.h"
#include "locktable/resizable_lock_table.h"
#include "platform/real_platform.h"

namespace cna {
namespace {

using RealResizable =
    locktable::ResizableLockTable<RealPlatform, locks::CnaLock<RealPlatform>>;

constexpr std::uint64_t kKeyRange = 512;

// --- Grow/shrink under load: no lost updates, exact accounting ---

TEST(ReshardingStress, ManualGrowShrinkUnderLoadLosesNoUpdates) {
  locktable::ResizableLockTableOptions o;
  o.stripes = 8;
  o.policy.min_stripes = 4;
  o.policy.max_stripes = 1024;
  o.policy.check_interval_ops = 0;  // manual resizes only: exact accounting
  o.stats_probe_period = 1;
  RealResizable table(o);

  constexpr int kWorkers = 6;
  constexpr int kItersPerWorker = 4000;
  constexpr int kResizes = 40;
  // Mutated only under the key's stripe; any acquisition that slipped
  // through a migration un-excluded shows up as a lost increment.
  std::vector<std::uint64_t> counters(kKeyRange, 0);
  // Caller-side acquisition counts, per worker (single-key ops: one stripe
  // acquisition per op; TryLock successes included, spurious failures not).
  std::vector<std::uint64_t> acquired(kWorkers, 0);

  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng =
          XorShift64::FromSeed(0xabcd + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kItersPerWorker; ++i) {
        // Skew: ~half the traffic on 8 hot keys, the rest uniform.
        const std::uint64_t key = rng.NextBelow(2) != 0
                                      ? rng.NextBelow(8)
                                      : rng.NextBelow(kKeyRange);
        if (rng.NextBelow(8) == 0) {
          if (table.TryLock(key)) {
            counters[key]++;
            table.Unlock(key);
            acquired[static_cast<std::size_t>(t)]++;
          }
          // Spurious TryLock failure (held stripe, migration, or stale
          // snapshot): no op issued, nothing to count on the caller side.
        } else {
          table.Lock(key);
          counters[key]++;
          table.Unlock(key);
          acquired[static_cast<std::size_t>(t)]++;
        }
      }
    });
  }
  std::thread resizer([&] {
    XorShift64 rng = XorShift64::FromSeed(0x5e5e);
    // Runs to exactly kResizes completed resizes (an idle table resizes
    // fast, so finishing after the workers costs nothing); alternating
    // small/large targets always change the size, so TryResize -- the only
    // resizer -- never reports a no-op.
    for (int done = 0; done < kResizes; ++done) {
      const std::size_t target = done % 2 == 0
                                     ? 256 + (rng.NextBelow(2) << 9)
                                     : 4 + rng.NextBelow(4);
      EXPECT_TRUE(table.TryResize(target));
      std::this_thread::yield();
    }
  });
  for (auto& th : workers) {
    th.join();
  }
  resizer.join();

  // Reclaim every superseded snapshot so its stats fold into the lifetime
  // summary (nothing is pinned anymore, so the drain must fully quiesce).
  table.domain().DrainAll();
  const auto s = table.Summary();
  EXPECT_EQ(s.epoch.retired, s.epoch.reclaimed);
  EXPECT_EQ(s.epoch.pending(), 0u);
  EXPECT_EQ(s.grows + s.shrinks, static_cast<std::uint64_t>(kResizes));
  EXPECT_GT(s.grows, 0u);
  EXPECT_GT(s.shrinks, 0u);
  EXPECT_GT(s.drained_stripes, 0u);

  // Zero lost updates: the guarded counters saw every successful op.
  std::uint64_t issued = 0;
  for (const std::uint64_t a : acquired) {
    issued += a;
  }
  std::uint64_t counted = 0;
  for (const std::uint64_t c : counters) {
    counted += c;
  }
  EXPECT_EQ(counted, issued);

  // The lifetime accounting identity (see file header).
  EXPECT_EQ(s.locks.total_acquisitions,
            issued + s.validation_retries + s.drained_stripes);
}

// --- Multi-key transactions across migrations conserve value ---

TEST(ReshardingStress, TransfersAcrossResizesConserveTotal) {
  locktable::ResizableLockTableOptions o;
  o.stripes = 16;
  o.policy.min_stripes = 4;
  o.policy.max_stripes = 512;
  o.policy.check_interval_ops = 0;
  RealResizable table(o);

  constexpr int kWorkers = 4;
  constexpr int kItersPerWorker = 3000;
  constexpr std::uint64_t kInitialPerKey = 1000;
  std::vector<std::uint64_t> balance(kKeyRange, kInitialPerKey);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng =
          XorShift64::FromSeed(0xfeed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kItersPerWorker; ++i) {
        const std::uint64_t from = rng.NextBelow(kKeyRange);
        const std::uint64_t to = rng.NextBelow(kKeyRange);
        if (from == to) {
          continue;
        }
        RealResizable::MultiGuard guard(table, {from, to});
        const std::uint64_t amount = rng.NextBelow(5);
        const std::uint64_t moved =
            amount < balance[from] ? amount : balance[from];
        balance[from] -= moved;
        balance[to] += moved;
      }
    });
  }
  std::thread resizer([&] {
    bool grow = true;
    while (!stop.load(std::memory_order_relaxed)) {
      table.TryResize(grow ? 256 : 8);
      grow = !grow;
      std::this_thread::yield();
    }
  });
  for (auto& th : workers) {
    th.join();
  }
  stop.store(true, std::memory_order_relaxed);
  resizer.join();

  std::uint64_t total = 0;
  for (const std::uint64_t b : balance) {
    total += b;
  }
  EXPECT_EQ(total, kKeyRange * kInitialPerKey);
  EXPECT_EQ(table.HeldByThisContext(), 0u);
}

// --- The automatic policy reacts to measured contention ---

TEST(ReshardingStress, PolicyGrowsUnderUniformContentionAndShrinksWhenQuiet) {
  locktable::ResizableLockTableOptions o;
  o.stripes = 4;
  o.policy.min_stripes = 4;
  o.policy.max_stripes = 4096;
  o.policy.check_interval_ops = 256;
  o.policy.min_sample_ops = 200;  // below the tick interval so every
                                  // evaluation acts, even single-threaded
  o.policy.grow_contention = 0.05;
  o.policy.shrink_contention = 0.02;
  o.stats_probe_period = 1;  // exact contention counts: deterministic signal
  RealResizable table(o);

  // Contended phase.  Real threads on few cores rarely collide on empty
  // critical sections (a preempted holder is the only overlap), so one op
  // in eight yields *inside* the critical section: the holder hands the
  // core away while holding, and every other worker that runs meanwhile
  // probes a held stripe -- a contention window the policy must see,
  // whatever the core count.
  constexpr int kWorkers = 3;
  constexpr int kItersPerWorker = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      XorShift64 rng =
          XorShift64::FromSeed(0x9090 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kItersPerWorker; ++i) {
        const std::uint64_t key = rng.NextBelow(kKeyRange);
        table.Lock(key);
        if (rng.NextBelow(8) == 0) {
          std::this_thread::yield();
        }
        table.Unlock(key);
      }
    });
  }
  for (auto& th : workers) {
    th.join();
  }
  const std::size_t contended_stripes = table.stripes();
  EXPECT_GT(contended_stripes, 4u)
      << "uniform contention on 4 stripes must trigger growth";
  EXPECT_GT(table.Summary().grows, 0u);

  // Quiet phase: one thread, zero contention; the policy's two-sample
  // hysteresis streak shrinks the namespace back step by step.
  for (int i = 0; i < 100000; ++i) {
    table.Lock(static_cast<std::uint64_t>(i) % kKeyRange);
    table.Unlock(static_cast<std::uint64_t>(i) % kKeyRange);
  }
  EXPECT_LT(table.stripes(), contended_stripes)
      << "a quiet table must shrink back";
  EXPECT_GT(table.Summary().shrinks, 0u);
}

// --- C API round trip (the surface CI's TSan job exercises) ---

TEST(ReshardingStress, CApiRoundTripWithConcurrentResizes) {
  cna_resizable_t* table = cna_resizable_create_default(16);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(cna_resizable_stripes(table), 16u);

  // Lock/unlock across a concurrent manual resize from another thread.
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::uint64_t guarded = 0;
  std::thread resizer([&] {
    bool grow = true;
    while (!stop.load(std::memory_order_relaxed)) {
      cna_resizable_resize(table, grow ? 128 : 8);
      grow = !grow;
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < kIters; ++i) {
    const std::uint64_t key = static_cast<std::uint64_t>(i) % 64;
    ASSERT_EQ(cna_resizable_lock(table, key), 0);
    ++guarded;
    ASSERT_EQ(cna_resizable_unlock(table, key), 0);
    const std::uint64_t pair[2] = {key, key + 64};
    ASSERT_EQ(cna_resizable_lock_many(table, pair, 2), 0);
    ++guarded;
    ASSERT_EQ(cna_resizable_unlock_many(table, pair, 2), 0);
  }
  stop.store(true, std::memory_order_relaxed);
  resizer.join();
  EXPECT_EQ(guarded, static_cast<std::uint64_t>(2 * kIters));

  // Error surface: unlock without a lock reports EPERM, resize to the
  // current size reports EBUSY (no-op), null tables are rejected.
  EXPECT_EQ(cna_resizable_unlock(table, 7), EPERM);
  const std::size_t now = cna_resizable_stripes(table);
  EXPECT_EQ(cna_resizable_resize(table, now), EBUSY);
  EXPECT_EQ(cna_resizable_lock(nullptr, 0), EINVAL);

  // Reclamation observability: every completed resize -- however many the
  // background resizer got through -- retired exactly one snapshot, and one
  // deterministic manual resize from this thread moves both counters.
  const std::uint64_t before =
      cna_resizable_grows(table) + cna_resizable_shrinks(table);
  EXPECT_EQ(cna_resizable_epoch_retired(table), before);
  ASSERT_EQ(cna_resizable_resize(table, now == 8 ? 32 : 8), 0);
  const std::uint64_t resizes =
      cna_resizable_grows(table) + cna_resizable_shrinks(table);
  EXPECT_EQ(resizes, before + 1);
  EXPECT_EQ(cna_resizable_epoch_retired(table), resizes);
  EXPECT_LE(cna_resizable_epoch_reclaimed(table),
            cna_resizable_epoch_retired(table));

  cna_resizable_destroy(table);
}

// --- The registry's adaptive facade ---

TEST(ReshardingStress, AdaptiveShardedMutexResizesAndReports) {
  core::AdaptiveShardedMutex mutex(core::LockKind::kCna, 8);
  EXPECT_EQ(mutex.stripes(), 8u);
  mutex.lock(42);
  mutex.unlock(42);
  mutex.lock_many({1, 2, 3});
  mutex.unlock_many({1, 2, 3});
  EXPECT_TRUE(mutex.try_resize(64));
  EXPECT_EQ(mutex.stripes(), 64u);
  const auto s = mutex.summary();
  EXPECT_EQ(s.grows, 1u);
  EXPECT_EQ(s.epoch.retired, 1u);
  EXPECT_THROW(core::AdaptiveShardedMutex("no-such-lock", 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace cna
