// Real-thread stress of the GCR concurrency-restriction layer (this file
// runs in the CI TSan job's real-thread filter).
//
// The accounting invariant under stress: every acquisition is exactly one of
// direct or passivated-then-admitted, even while another thread flips
// Engage/Disengage and the active-set limit mid-traffic -- the exact
// interleaving a telemetry callback produces in production.  Also covers the
// cna_gcr_* C surface end to end across threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/pthread_api.h"
#include "locks/cna.h"
#include "locks/gcr.h"
#include "platform/real_platform.h"

namespace cna {
namespace {

using RealGcr = locks::GcrLock<RealPlatform, locks::CnaLock<RealPlatform>>;

TEST(GcrStress, AccountingHoldsUnderEngageDisengageFlips) {
  RealGcr lock;
  lock.SetActiveLimit(2);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::uint64_t shared = 0;  // guarded by `lock`
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        RealGcr::Handle h;
        lock.Lock(h);
        ++shared;
        lock.Unlock(h);
      }
    });
  }
  // The controller thread: flip restriction and resize the active set while
  // the workers hammer the lock.
  std::thread controller([&] {
    std::uint32_t limit = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      lock.Engage();
      lock.SetActiveLimit(limit);
      limit = (limit % 4) + 1;
      std::this_thread::yield();
      lock.Disengage();
      std::this_thread::yield();
    }
    lock.Disengage();
  });
  for (auto& th : threads) {
    th.join();
  }
  stop.store(true);
  controller.join();

  EXPECT_EQ(shared, static_cast<std::uint64_t>(kThreads) * kIters);
  const locks::GcrCountersSnapshot s = lock.Stats();
  // Every Lock() was exactly one of the two admission paths.
  EXPECT_EQ(s.total(), static_cast<std::uint64_t>(kThreads) * kIters);
  // Nothing left parked or counted active after the run.
  EXPECT_EQ(lock.PassiveNow(), 0u);
  EXPECT_EQ(lock.ActiveNow(), 0u);
}

TEST(GcrStress, RestrictedThroughputStillCompletesWithSmallActiveSet) {
  RealGcr lock;
  // Pin the bounds so the adaptive grow path (which widens the limit whenever
  // an unlocker finds no passive waiters) cannot defeat the fixed-size test.
  lock.SetActiveBounds(1, 1);
  lock.SetActiveLimit(1);
  lock.Engage();
  constexpr int kThreads = 6;
  constexpr int kIters = 1500;
  std::uint64_t shared = 0;
  // Start gate: without it the tight loops can run back-to-back (thread
  // spawn latency exceeds the loop's runtime) and nothing ever passivates.
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < kThreads) {
      }
      for (int i = 0; i < kIters; ++i) {
        RealGcr::Handle h;
        lock.Lock(h);
        ++shared;
        // Yield while holding: on a small (even 1-CPU) host the tight loops
        // are timesliced, so arrivals otherwise never observe a full active
        // set.  Running a peer inside the held window makes passivation
        // certain rather than scheduler luck.
        std::this_thread::yield();
        lock.Unlock(h);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(shared, static_cast<std::uint64_t>(kThreads) * kIters);
  const locks::GcrCountersSnapshot s = lock.Stats();
  EXPECT_EQ(s.total(), static_cast<std::uint64_t>(kThreads) * kIters);
  // An active set of 1 under 6 threads must have passivated the surplus.
  EXPECT_GT(s.passivations, 0u);
  EXPECT_EQ(lock.PassiveNow(), 0u);
}

// ---------------------------------------------------------------------------
// C surface.
// ---------------------------------------------------------------------------

TEST(GcrCApi, CreateLockUnlockDestroy) {
  cna_gcr_t* g = cna_gcr_create("cna");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(cna_gcr_restricted(g), 0);
  EXPECT_EQ(cna_gcr_lock(g), 0);
  EXPECT_EQ(cna_gcr_unlock(g), 0);
  EXPECT_EQ(cna_gcr_unlock(g), EPERM);  // unbalanced
  EXPECT_GT(cna_gcr_state_bytes(g), 0u);
  cna_gcr_destroy(g);

  EXPECT_EQ(cna_gcr_create("definitely-not-a-lock"), nullptr);
  cna_gcr_t* d = cna_gcr_create_default();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(cna_gcr_lock(d), 0);
  EXPECT_EQ(cna_gcr_unlock(d), 0);
  cna_gcr_destroy(d);

  // Null-safety.
  EXPECT_EQ(cna_gcr_lock(nullptr), EINVAL);
  EXPECT_EQ(cna_gcr_unlock(nullptr), EINVAL);
  EXPECT_EQ(cna_gcr_engage(nullptr), EINVAL);
  EXPECT_EQ(cna_gcr_restricted(nullptr), 0);
  cna_gcr_destroy(nullptr);
}

TEST(GcrCApi, TryLockAndRestriction) {
  cna_gcr_t* g = cna_gcr_create("cna");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(cna_gcr_trylock(g), 0);
  EXPECT_EQ(cna_gcr_trylock(g), EBUSY);  // held
  EXPECT_EQ(cna_gcr_unlock(g), 0);

  EXPECT_EQ(cna_gcr_set_active_limit(g, 2), 0);
  EXPECT_EQ(cna_gcr_engage(g), 0);
  EXPECT_EQ(cna_gcr_restricted(g), 1);
  EXPECT_EQ(cna_gcr_lock(g), 0);
  EXPECT_EQ(cna_gcr_unlock(g), 0);
  EXPECT_EQ(cna_gcr_disengage(g), 0);
  EXPECT_EQ(cna_gcr_restricted(g), 0);

  cna_gcr_stats_t st;
  EXPECT_EQ(cna_gcr_get_stats(g, &st), 0);
  // One successful trylock + one lock; the failed trylock is not an
  // acquisition.
  EXPECT_EQ(st.direct + st.passivations, 2u);
  EXPECT_EQ(st.engages, 1u);
  EXPECT_EQ(st.disengages, 1u);
  EXPECT_EQ(cna_gcr_get_stats(g, nullptr), EINVAL);
  cna_gcr_destroy(g);
}

TEST(GcrCApi, EngagedAcrossThreads) {
  cna_gcr_t* g = cna_gcr_create("cna");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(cna_gcr_set_active_limit(g, 1), 0);
  ASSERT_EQ(cna_gcr_engage(g), 0);
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::uint64_t shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ASSERT_EQ(cna_gcr_lock(g), 0);
        ++shared;
        ASSERT_EQ(cna_gcr_unlock(g), 0);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(shared, static_cast<std::uint64_t>(kThreads) * kIters);
  cna_gcr_stats_t st;
  ASSERT_EQ(cna_gcr_get_stats(g, &st), 0);
  EXPECT_EQ(st.direct + st.passivations,
            static_cast<std::uint64_t>(kThreads) * kIters);
  cna_gcr_destroy(g);
}

}  // namespace
}  // namespace cna
