// Tests for the NUMA machine simulator: coherence-cost model, deterministic
// scheduling, spin parking, shared regions, and the SimPlatform bindings.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/machine.h"
#include "sim/sim_atomic.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

sim::MachineConfig SmallTwoSocket() {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  return cfg;
}

TEST(Machine, RunsFibersToCompletion) {
  sim::Machine m(SmallTwoSocket());
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    m.Spawn([&done] { ++done; });
  }
  m.Run();
  EXPECT_EQ(done, 4);
}

TEST(Machine, ScatterPlacementAlternatesSockets) {
  sim::Machine m(SmallTwoSocket());
  std::vector<int> sockets;
  for (int i = 0; i < 4; ++i) {
    m.Spawn([&m, &sockets] { sockets.push_back(m.CurrentSocket()); });
  }
  m.Run();
  // Scatter: fibers 0..3 -> sockets 0,1,0,1.
  EXPECT_EQ(sockets.size(), 4u);
  int on0 = 0;
  for (int s : sockets) {
    on0 += s == 0 ? 1 : 0;
  }
  EXPECT_EQ(on0, 2);
}

TEST(Machine, PackPlacementFillsSocketZeroFirst) {
  auto cfg = SmallTwoSocket();
  cfg.placement = sim::Placement::kPackSockets;
  sim::Machine m(cfg);
  std::vector<int> sockets;
  for (int i = 0; i < 4; ++i) {
    m.Spawn([&m, &sockets] { sockets.push_back(m.CurrentSocket()); });
  }
  m.Run();
  for (int s : sockets) {
    EXPECT_EQ(s, 0);
  }
}

TEST(Machine, SpawnBeyondCapacityThrows) {
  sim::Machine m(SmallTwoSocket());
  for (int i = 0; i < 8; ++i) {
    m.Spawn([] {});
  }
  EXPECT_THROW(m.Spawn([] {}), std::runtime_error);
}

TEST(Machine, LocalWorkAdvancesOnlyLocalClock) {
  sim::Machine m(SmallTwoSocket());
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  m.Spawn([&] {
    m.AdvanceLocalWork(1000);
    t0 = m.NowNs();
  });
  m.Spawn([&] { t1 = m.NowNs(); });
  m.Run();
  EXPECT_GE(t0, 1000u);
  EXPECT_EQ(t1, 0u);
  EXPECT_GE(m.FinalTimeNs(), 1000u);
}

// --- Cost-model unit tests: drive one or two fibers through sim::Atomic and
// check the classified hit/miss counts. ---

TEST(CacheModel, ColdReadIsLocalMissThenHit) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> cell{0};
  m.Spawn([&] {
    (void)cell.load();
    (void)cell.load();
  });
  m.Run();
  const auto st = m.TotalStats();
  EXPECT_EQ(st.loads, 2u);
  EXPECT_EQ(st.local_misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.remote_misses, 0u);
}

TEST(CacheModel, CrossSocketWriteAfterReadIsRemoteMiss) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> cell{0};
  // Fiber on socket 0 reads; fiber on socket 1 then writes -> invalidation.
  m.SpawnOnCpu(0, [&] { (void)cell.load(); });
  m.SpawnOnCpu(4, [&] {
    m.AdvanceLocalWork(10'000);  // ensure the reader goes first
    cell.store(1);
  });
  m.Run();
  const auto st = m.TotalStats();
  EXPECT_EQ(st.remote_misses, 1u);  // the store had to invalidate socket 0
}

TEST(CacheModel, SameSocketWriteAfterOwnWriteIsHit) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> cell{0};
  m.SpawnOnCpu(0, [&] {
    cell.store(1);
    cell.store(2);
  });
  m.Run();
  const auto st = m.TotalStats();
  EXPECT_EQ(st.stores, 2u);
  EXPECT_EQ(st.local_misses, 1u);
  EXPECT_EQ(st.hits, 1u);
}

TEST(CacheModel, ReadSharedThenWriteInvalidates) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> cell{0};
  // Both sockets read (line shared), then socket 0 writes (remote miss: must
  // invalidate socket 1), then socket 1 reads again (remote miss).
  m.SpawnOnCpu(0, [&] {
    (void)cell.load();
    m.AdvanceLocalWork(1000);
    cell.store(1);
  });
  m.SpawnOnCpu(4, [&] {
    (void)cell.load();
    m.AdvanceLocalWork(5000);
    (void)cell.load();
  });
  m.Run();
  const auto st = m.TotalStats();
  EXPECT_GE(st.remote_misses, 2u);
}

TEST(CacheModel, RmwCostsMoreThanLoad) {
  auto cfg = SmallTwoSocket();
  sim::Machine m(cfg);
  sim::Atomic<std::uint64_t> cell{0};
  std::uint64_t t_after_rmw = 0;
  m.Spawn([&] {
    cell.fetch_add(1);
    t_after_rmw = m.NowNs();
  });
  m.Run();
  EXPECT_EQ(t_after_rmw,
            cfg.latency.local_miss_ns + cfg.latency.atomic_extra_ns);
}

TEST(CacheModel, AtomicOpsOutsideFibersArePlain) {
  sim::Atomic<int> cell{5};
  EXPECT_EQ(cell.load(), 5);
  cell.store(6);
  EXPECT_EQ(cell.exchange(7), 6);
  int expected = 7;
  EXPECT_TRUE(cell.compare_exchange_strong(expected, 8));
  EXPECT_EQ(cell.fetch_add(2), 8);
  EXPECT_EQ(cell.load(), 10);
}

TEST(CacheModel, CompareExchangeFailureUpdatesExpected) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<int> cell{3};
  bool ok = true;
  int expected = 99;
  m.Spawn([&] { ok = cell.compare_exchange_strong(expected, 5); });
  m.Run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(expected, 3);
  EXPECT_EQ(cell.load(), 3);
}

TEST(CacheModel, FetchOps) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint32_t> cell{0b1100};
  m.Spawn([&] {
    EXPECT_EQ(cell.fetch_or(0b0011), 0b1100u);
    EXPECT_EQ(cell.fetch_and(0b1010), 0b1111u);
    EXPECT_EQ(cell.fetch_sub(0b0010), 0b1010u);
  });
  m.Run();
  EXPECT_EQ(cell.load(), 0b1000u);
}

// --- Spin parking ---

TEST(SpinPark, SpinnerSleepsUntilValueChanges) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> flag{0};
  std::uint64_t waiter_done_at = 0;
  m.SpawnOnCpu(0, [&] {
    while (flag.load() == 0) {
      m.PauseHint();
    }
    waiter_done_at = m.NowNs();
  });
  m.SpawnOnCpu(4, [&] {
    m.AdvanceLocalWork(100'000);
    flag.store(1);
  });
  m.Run();
  EXPECT_GE(waiter_done_at, 100'000u);
  EXPECT_GE(m.TotalStats().parks, 1u);
  EXPECT_GE(m.TotalStats().wakeups, 1u);
}

TEST(SpinPark, NoDeadlockWhenValueArrivesBeforePark) {
  // The value-compare in SpinParkIfUnchanged must prevent parking on a
  // line whose awaited value is already present.
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> flag{0};
  m.SpawnOnCpu(0, [&] {
    m.AdvanceLocalWork(50'000);  // writer certainly done by now
    while (flag.load() == 0) {
      m.PauseHint();
    }
  });
  m.SpawnOnCpu(4, [&] { flag.store(1); });
  m.Run();
  SUCCEED();
}

TEST(SpinPark, TrueDeadlockIsDetected) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> never_set{0};
  m.Spawn([&] {
    while (never_set.load() == 0) {
      m.PauseHint();
    }
  });
  EXPECT_THROW(m.Run(), std::logic_error);
}

TEST(SpinPark, WakeupPropagatesWriterClock) {
  sim::Machine m(SmallTwoSocket());
  sim::Atomic<std::uint64_t> flag{0};
  std::uint64_t waiter_time = 0;
  m.SpawnOnCpu(0, [&] {
    while (flag.load() == 0) {
      m.PauseHint();
    }
    waiter_time = m.NowNs();
  });
  m.SpawnOnCpu(4, [&] {
    m.AdvanceLocalWork(777'000);
    flag.store(1);
  });
  m.Run();
  // The waiter cannot observe the write before the writer's clock.
  EXPECT_GE(waiter_time, 777'000u);
}

// --- Determinism ---

struct PingPongResult {
  std::uint64_t final_time;
  sim::CacheStats stats;
};

PingPongResult RunPingPong(std::uint64_t seed) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 2);
  cfg.seed = seed;
  sim::Machine m(cfg);
  auto flag = std::make_unique<sim::Atomic<std::uint64_t>>(0);
  for (int t = 0; t < 4; ++t) {
    m.Spawn([&m, f = flag.get(), t] {
      for (int i = 0; i < 200; ++i) {
        f->fetch_add(1);
        m.AdvanceLocalWork(static_cast<std::uint64_t>(m.Random() % 64) +
                           static_cast<std::uint64_t>(t));
      }
    });
  }
  m.Run();
  return {m.FinalTimeNs(), m.TotalStats()};
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  const auto a = RunPingPong(123);
  const auto b = RunPingPong(123);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.stats.remote_misses, b.stats.remote_misses);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.Accesses(), b.stats.Accesses());
}

TEST(Determinism, DifferentSeedsDiffer) {
  const auto a = RunPingPong(123);
  const auto b = RunPingPong(321);
  // The random local-work jitter differs, so timing must differ.
  EXPECT_NE(a.final_time, b.final_time);
}

TEST(Determinism, PerFiberRandomStreamsAreStable) {
  std::vector<std::uint64_t> first;
  for (int round = 0; round < 2; ++round) {
    sim::Machine m(SmallTwoSocket());
    std::vector<std::uint64_t> draws;
    for (int t = 0; t < 3; ++t) {
      m.Spawn([&m, &draws] { draws.push_back(m.Random()); });
    }
    m.Run();
    if (round == 0) {
      first = draws;
    } else {
      EXPECT_EQ(first, draws);
    }
  }
}

// --- Shared regions ---

TEST(SharedRegion, ChargesTrafficAndMigrates) {
  sim::Machine m(SmallTwoSocket());
  m.SpawnOnCpu(0, [&] { m.AccessSharedRegion(1, 0, 8, /*write=*/true); });
  m.SpawnOnCpu(4, [&] {
    m.AdvanceLocalWork(10'000);
    m.AccessSharedRegion(1, 0, 8, /*write=*/false);
  });
  m.Run();
  const auto st = m.TotalStats();
  EXPECT_EQ(st.stores, 8u);
  EXPECT_EQ(st.loads, 8u);
  EXPECT_EQ(st.remote_misses, 8u);  // all 8 reads cross sockets
}

TEST(SharedRegion, DistinctRegionsDoNotAlias) {
  sim::Machine m(SmallTwoSocket());
  m.SpawnOnCpu(0, [&] {
    m.AccessSharedRegion(1, 0, 1, true);
    m.AccessSharedRegion(2, 0, 1, false);  // different region, same line no.
  });
  m.Run();
  EXPECT_EQ(m.TotalStats().local_misses, 2u);  // both cold: no aliasing
}

// --- SimPlatform facade ---

TEST(SimPlatform, BindsToActiveMachine) {
  sim::Machine m(SmallTwoSocket());
  int socket = -1;
  int cpu = -1;
  std::uint64_t r1 = 0;
  std::uint64_t r2 = 0;
  m.SpawnOnCpu(5, [&] {
    socket = SimPlatform::CurrentSocket();
    cpu = SimPlatform::CpuId();
    r1 = SimPlatform::Random();
    r2 = SimPlatform::Random();
    SimPlatform::TlsSlot() = 9;
    SimPlatform::OnDataAccess(1, true);
    SimPlatform::ExternalWork(50);
    SimPlatform::Pause();
  });
  m.Run();
  EXPECT_EQ(socket, 1);  // cpu 5 of Uniform(2,4) is on socket 1
  EXPECT_EQ(cpu, 5);
  EXPECT_NE(r1, r2);
  EXPECT_GT(m.TotalStats().stores, 0u);
}

TEST(SimPlatform, FallsBackOutsideFibers) {
  EXPECT_EQ(SimPlatform::CurrentSocket(), 0);
  EXPECT_EQ(SimPlatform::CpuId(), 0);
  SimPlatform::Pause();
  SimPlatform::ExternalWork(10);
  SimPlatform::OnDataAccess(3, false);
  (void)SimPlatform::Random();
  SimPlatform::TlsSlot() = 1;
  SUCCEED();
}

TEST(SimPlatform, TlsSlotIsPerFiber) {
  sim::Machine m(SmallTwoSocket());
  std::vector<std::uint64_t> values;
  for (int t = 0; t < 3; ++t) {
    m.Spawn([&values, t] {
      SimPlatform::TlsSlot() = static_cast<std::uint64_t>(t) + 100;
      values.push_back(SimPlatform::TlsSlot());
    });
  }
  m.Run();
  EXPECT_EQ(values, (std::vector<std::uint64_t>{100, 101, 102}));
}


TEST(Machine, FourSocketRemoteCostExceedsTwoSocket) {
  auto run = [](sim::MachineConfig cfg) {
    sim::Machine m(cfg);
    sim::Atomic<std::uint64_t> cell{0};
    std::uint64_t cost = 0;
    m.SpawnOnCpu(0, [&] { cell.store(1); });
    const int remote_cpu = cfg.topology.NumCpus() - 1;  // last socket
    m.SpawnOnCpu(remote_cpu, [&] {
      sim::Machine::Active()->AdvanceLocalWork(10'000);
      const std::uint64_t before = sim::Machine::Active()->NowNs();
      (void)cell.load();
      cost = sim::Machine::Active()->NowNs() - before;
    });
    m.Run();
    return cost;
  };
  const auto two = run(sim::MachineConfig::TwoSocket());
  const auto four = run(sim::MachineConfig::FourSocket());
  EXPECT_GT(four, two);  // the paper's 4-socket remote hop costs more
}

TEST(Machine, SocketTransferCheaperThanRemote) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  sim::Atomic<std::uint64_t> cell{0};
  std::uint64_t same_socket_cost = 0;
  std::uint64_t cross_socket_cost = 0;
  m.SpawnOnCpu(0, [&] { cell.store(1); });
  m.SpawnOnCpu(1, [&] {  // same socket as cpu 0
    sim::Machine::Active()->AdvanceLocalWork(1'000);
    const auto before = sim::Machine::Active()->NowNs();
    (void)cell.load();
    same_socket_cost = sim::Machine::Active()->NowNs() - before;
  });
  m.SpawnOnCpu(4, [&] {  // other socket
    sim::Machine::Active()->AdvanceLocalWork(10'000);
    const auto before = sim::Machine::Active()->NowNs();
    (void)cell.load();
    cross_socket_cost = sim::Machine::Active()->NowNs() - before;
  });
  m.Run();
  EXPECT_EQ(same_socket_cost, cfg.latency.socket_transfer_ns);
  EXPECT_EQ(cross_socket_cost, cfg.latency.remote_miss_ns);
}

TEST(Machine, RejectsOversizedTopology) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(4, 128);  // 512 > kMaxSimCpus
  EXPECT_THROW(sim::Machine m(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace cna
