// Tests for the Linux qspinlock reproduction: word encoding, the three
// acquisition paths (fast / pending / queue), nesting, and the CNA slow path
// including the secondary-queue tail reinstallation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "platform/real_platform.h"
#include "platform/thread_context.h"
#include "qspin/qspin_word.h"
#include "qspin/qspinlock.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using StockSim = qspin::QSpinLock<SimPlatform, qspin::SlowPathKind::kMcs>;
using CnaSim = qspin::QSpinLock<SimPlatform, qspin::SlowPathKind::kCna>;
using StockReal = qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kMcs>;

TEST(QspinWord, TailEncodingRoundTrips) {
  for (int cpu : {0, 1, 7, 63, 143, 1000}) {
    for (int idx = 0; idx < qspin::kMaxNesting; ++idx) {
      const std::uint32_t bits = qspin::EncodeTail(cpu, idx);
      EXPECT_EQ(qspin::TailCpu(bits), cpu);
      EXPECT_EQ(qspin::TailIdx(bits), idx);
      EXPECT_TRUE(qspin::HasTail(bits));
      EXPECT_FALSE(qspin::IsLocked(bits));
      EXPECT_FALSE(qspin::HasPending(bits));
    }
  }
}

TEST(QspinWord, FlagPredicates) {
  EXPECT_TRUE(qspin::IsLocked(qspin::kLockedVal));
  EXPECT_TRUE(qspin::HasPending(qspin::kPendingBit));
  EXPECT_FALSE(qspin::HasTail(qspin::kLockedVal | qspin::kPendingBit));
  EXPECT_FALSE(qspin::HasTail(0));
}

TEST(QspinWord, EncodedFieldsDoNotOverlap) {
  const std::uint32_t bits = qspin::EncodeTail(1000, 3);
  EXPECT_EQ(bits & qspin::kLockedMask, 0u);
  EXPECT_EQ(bits & qspin::kPendingBit, 0u);
}

TEST(Qspinlock, FastPathLeavesCleanWord) {
  StockReal lock;
  EXPECT_EQ(lock.RawValue(), 0u);
  lock.Lock();
  EXPECT_EQ(lock.RawValue(), qspin::kLockedVal);
  lock.Unlock();
  EXPECT_EQ(lock.RawValue(), 0u);
}

TEST(Qspinlock, TryLock) {
  StockReal lock;
  EXPECT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(Qspinlock, PendingPathOnSim) {
  // Holder + exactly one contender: the contender must use the pending bit,
  // never the queue (observable: the word never contains tail bits).
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 2);
  sim::Machine m(cfg);
  StockSim lock;
  bool saw_pending = false;
  bool saw_tail = false;
  m.SpawnOnCpu(0, [&] {
    lock.Lock();
    sim::Machine::Active()->AdvanceLocalWork(5'000);
    saw_pending = qspin::HasPending(lock.RawValue());
    saw_tail = qspin::HasTail(lock.RawValue());
    lock.Unlock();
  });
  m.SpawnOnCpu(2, [&] {
    sim::Machine::Active()->AdvanceLocalWork(500);  // arrive while held
    lock.Lock();
    lock.Unlock();
  });
  m.Run();
  EXPECT_TRUE(saw_pending);
  EXPECT_FALSE(saw_tail);
  EXPECT_EQ(lock.RawValue(), 0u);
}

TEST(Qspinlock, QueuePathEngagesWithThreeContenders) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  StockSim lock;
  bool saw_tail = false;
  for (int t = 0; t < 4; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 200 + 1);
      lock.Lock();
      saw_tail |= qspin::HasTail(lock.RawValue());
      sim::Machine::Active()->AdvanceLocalWork(3'000);
      lock.Unlock();
    });
  }
  m.Run();
  EXPECT_TRUE(saw_tail);
  EXPECT_EQ(lock.RawValue(), 0u);
}

template <typename L>
void RunSimMutualExclusion(int threads, int iters) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 18);
  sim::Machine m(cfg);
  L lock;
  std::uint64_t counter = 0;
  int in_cs = 0;
  bool violation = false;
  for (int t = 0; t < threads; ++t) {
    m.Spawn([&] {
      for (int i = 0; i < iters; ++i) {
        lock.Lock();
        violation |= (in_cs++ != 0);
        ++counter;
        --in_cs;
        lock.Unlock();
      }
    });
  }
  m.Run();
  EXPECT_FALSE(violation);
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * iters);
  EXPECT_EQ(lock.RawValue(), 0u);
}

TEST(Qspinlock, StockMutualExclusionManyFibers) {
  RunSimMutualExclusion<StockSim>(16, 200);
}

TEST(Qspinlock, CnaMutualExclusionManyFibers) {
  RunSimMutualExclusion<CnaSim>(16, 200);
}

TEST(Qspinlock, CnaSecondaryQueueReinstallsTail) {
  // Force the CNA path where the main queue drains while remote waiters sit
  // in the secondary queue: the word's tail must be re-pointed at the
  // secondary tail (not zeroed), and every waiter must still get the lock.
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  CnaSim lock;
  std::vector<int> order;
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 300 + 1);
      lock.Lock();
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(100'000);
      }
      order.push_back(t);
      lock.Unlock();
    });
  }
  m.Run();
  ASSERT_EQ(order.size(), 6u);
  // t0 takes the fast path; t1 arrives next and becomes the *pending* waiter
  // (bypassing the queue, as in the kernel); t2..t5 queue.  The CNA queue
  // logic then serves t2's socket first (t2, t4) and flushes the remote
  // waiters (t3, t5) from the secondary queue afterwards.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 3, 5}));
  EXPECT_EQ(lock.RawValue(), 0u);
}

TEST(Qspinlock, NestingTwoLocksUsesDistinctNodes) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  StockSim outer;
  StockSim inner;
  std::uint64_t counter = 0;
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&] {
      for (int i = 0; i < 50; ++i) {
        outer.Lock();
        inner.Lock();
        ++counter;
        inner.Unlock();
        outer.Unlock();
      }
    });
  }
  m.Run();
  EXPECT_EQ(counter, 300u);
  EXPECT_EQ(outer.RawValue(), 0u);
  EXPECT_EQ(inner.RawValue(), 0u);
}

TEST(Qspinlock, RealThreadsMutualExclusion) {
  StockReal lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      platform::ThreadContext::Current().SetVirtualSocket(t % 2);
      for (int i = 0; i < kIters; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
      platform::ThreadContext::Current().SetVirtualSocket(
          platform::ThreadContext::kAutoSocket);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(lock.RawValue(), 0u);
}

TEST(Qspinlock, CnaRealThreadsMutualExclusion) {
  qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kCna> lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      platform::ThreadContext::Current().SetVirtualSocket(t % 2);
      for (int i = 0; i < kIters; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
      platform::ThreadContext::Current().SetVirtualSocket(
          platform::ThreadContext::kAutoSocket);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(lock.RawValue(), 0u);
}

}  // namespace
}  // namespace cna
