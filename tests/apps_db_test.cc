// Tests for the MiniLevelDb and MiniKyotoDb substrates.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "apps/mini_kyoto.h"
#include "apps/mini_leveldb.h"
#include "base/rng.h"
#include "locks/cna.h"
#include "locks/mcs.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using RealCna = locks::CnaLock<RealPlatform>;

apps::MiniLevelDbOptions SmallDb(std::uint64_t keys) {
  apps::MiniLevelDbOptions o;
  o.prefill_keys = keys;
  o.cache_capacity_per_shard = 16;
  return o;
}

TEST(MiniLevelDb, PrefilledGetsReturnExpectedValues) {
  using Db = apps::MiniLevelDb<RealPlatform, RealCna>;
  Db db(SmallDb(10'000));
  for (std::uint64_t k : {0ull, 1ull, 999ull, 9'999ull}) {
    const auto v = db.Get(k);
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_EQ(*v, Db::MixValue(k));
  }
  EXPECT_FALSE(db.Get(10'000).has_value());
  EXPECT_FALSE(db.Get(1ull << 40).has_value());
}

TEST(MiniLevelDb, EmptyDbAlwaysMisses) {
  apps::MiniLevelDb<RealPlatform, RealCna> db(SmallDb(0));
  XorShift64 rng = XorShift64::FromSeed(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(db.ReadRandomOp(rng).has_value());
  }
}

TEST(MiniLevelDb, PutThenGetThroughMemtable) {
  apps::MiniLevelDb<RealPlatform, RealCna> db(SmallDb(100));
  db.Put(1ull << 30, 42);
  const auto v = db.Get(1ull << 30);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);
}

TEST(MiniLevelDb, SnapshotRefsReturnToZero) {
  apps::MiniLevelDb<RealPlatform, RealCna> db(SmallDb(1000));
  XorShift64 rng = XorShift64::FromSeed(2);
  for (int i = 0; i < 200; ++i) {
    (void)db.ReadRandomOp(rng);
  }
  EXPECT_EQ(db.version_refs(), 0u);
}

TEST(MiniLevelDb, ReadRandomHitsEntireRange) {
  apps::MiniLevelDb<RealPlatform, RealCna> db(SmallDb(64));
  XorShift64 rng = XorShift64::FromSeed(3);
  int hits = 0;
  for (int i = 0; i < 300; ++i) {
    hits += db.ReadRandomOp(rng).has_value() ? 1 : 0;
  }
  EXPECT_EQ(hits, 300);  // every key below prefill_keys exists
}

TEST(MiniLevelDb, WorksUnderConcurrentFibers) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  using Db = apps::MiniLevelDb<SimPlatform, locks::CnaLock<SimPlatform>>;
  Db db(SmallDb(5'000));
  int misses = 0;
  for (int t = 0; t < 8; ++t) {
    m.Spawn([&, t] {
      XorShift64 rng = XorShift64::FromSeed(static_cast<std::uint64_t>(t));
      for (int i = 0; i < 100; ++i) {
        misses += db.ReadRandomOp(rng).has_value() ? 0 : 1;
      }
    });
  }
  m.Run();
  EXPECT_EQ(misses, 0);
  EXPECT_EQ(db.version_refs(), 0u);
  EXPECT_GT(m.TotalStats().remote_misses, 0u);  // refcount line ping-pong
}

// ---------- MiniKyotoDb ----------

apps::MiniKyotoOptions SmallKyoto() {
  apps::MiniKyotoOptions o;
  o.key_range = 10'000;
  o.buckets_log2 = 12;
  return o;
}

TEST(MiniKyoto, SetGetRemove) {
  apps::MiniKyotoDb<RealPlatform, RealCna> db(SmallKyoto());
  EXPECT_TRUE(db.SetLocked(5, 500));
  EXPECT_EQ(db.GetLocked(5), 500u);
  EXPECT_TRUE(db.SetLocked(5, 501));  // overwrite
  EXPECT_EQ(db.GetLocked(5), 501u);
  EXPECT_TRUE(db.RemoveLocked(5));
  EXPECT_FALSE(db.RemoveLocked(5));
  EXPECT_EQ(db.GetLocked(5), 0u);
}

TEST(MiniKyoto, ProbeChainsHandleCollisions) {
  apps::MiniKyotoDb<RealPlatform, RealCna> db(SmallKyoto());
  // Insert many keys; verify all retrievable (within probe-chain capacity,
  // collisions may overwrite -- count must be high but need not be perfect).
  int retrievable = 0;
  constexpr int kN = 2000;
  for (int i = 1; i <= kN; ++i) {
    db.SetLocked(static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i));
  }
  for (int i = 1; i <= kN; ++i) {
    retrievable +=
        db.GetLocked(static_cast<std::uint64_t>(i)) ==
                static_cast<std::uint64_t>(i)
            ? 1
            : 0;
  }
  EXPECT_GT(retrievable, kN * 9 / 10);
}

TEST(MiniKyoto, WickedMixRunsAndMutates) {
  apps::MiniKyotoDb<RealPlatform, RealCna> db(SmallKyoto());
  XorShift64 rng = XorShift64::FromSeed(4);
  int mutations = 0;
  for (int i = 0; i < 2000; ++i) {
    mutations += db.WickedOp(rng) ? 1 : 0;
  }
  // ~3/8 of ops are sets (always mutate) plus some removes.
  EXPECT_GT(mutations, 2000 * 3 / 10);
  EXPECT_LT(mutations, 2000 * 6 / 10);
}

TEST(MiniKyoto, WickedIsDeterministicPerSeed) {
  auto run = [] {
    apps::MiniKyotoDb<RealPlatform, RealCna> db(SmallKyoto());
    XorShift64 rng = XorShift64::FromSeed(9);
    int mutations = 0;
    for (int i = 0; i < 500; ++i) {
      mutations += db.WickedOp(rng) ? 1 : 0;
    }
    return mutations;
  };
  EXPECT_EQ(run(), run());
}

// ---------- MiniKyotoStripedDb (combining bucket path) ----------

apps::MiniKyotoStripedOptions SmallStripedKyoto() {
  apps::MiniKyotoStripedOptions o;
  o.key_range = 10'000;
  o.buckets_log2 = 12;
  o.lock_stripes = 8;  // 512-bucket ranges, far above the probe bound
  return o;
}

TEST(MiniKyotoStriped, SetGetRemoveThroughCombiningStripes) {
  apps::MiniKyotoStripedDb<RealPlatform, RealCna> db(SmallStripedKyoto());
  EXPECT_TRUE(db.SetStriped(5, 500));
  EXPECT_EQ(db.GetStriped(5), 500u);
  EXPECT_TRUE(db.SetStriped(5, 501));  // overwrite
  EXPECT_EQ(db.GetStriped(5), 501u);
  EXPECT_TRUE(db.RemoveStriped(5));
  EXPECT_FALSE(db.RemoveStriped(5));
  EXPECT_EQ(db.GetStriped(5), 0u);
}

TEST(MiniKyotoStriped, ProbeChainsStayWithinTheirStripeRange) {
  apps::MiniKyotoStripedDb<RealPlatform, RealCna> db(SmallStripedKyoto());
  int retrievable = 0;
  constexpr int kN = 2000;
  for (int i = 1; i <= kN; ++i) {
    db.SetStriped(static_cast<std::uint64_t>(i),
                  static_cast<std::uint64_t>(i));
  }
  for (int i = 1; i <= kN; ++i) {
    retrievable += db.GetStriped(static_cast<std::uint64_t>(i)) ==
                           static_cast<std::uint64_t>(i)
                       ? 1
                       : 0;
  }
  EXPECT_GT(retrievable, kN * 9 / 10);
  // Every key's stripe stays inside the table's namespace.
  for (int i = 1; i <= 100; ++i) {
    EXPECT_LT(db.StripeOfKey(static_cast<std::uint64_t>(i)),
              db.table().stripes());
  }
}

TEST(MiniKyotoStriped, WickedFibersCombineOnBucketRanges) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  auto opts = SmallStripedKyoto();
  opts.lock_stripes = 2;  // two hot ranges: combining must kick in
  opts.collect_stats = true;
  apps::MiniKyotoStripedDb<SimPlatform, locks::CnaLock<SimPlatform>> db(opts);
  std::uint64_t total_ops = 0;
  for (int t = 0; t < 8; ++t) {
    m.Spawn([&, t] {
      XorShift64 rng = XorShift64::FromSeed(17 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 150; ++i) {
        (void)db.WickedOp(rng);
        ++total_ops;
      }
    });
  }
  m.Run();
  EXPECT_EQ(total_ops, 8u * 150u);
  const auto summary = db.table().CombiningSummary();
  EXPECT_EQ(summary.TotalOps(), 8u * 150u);
  EXPECT_GT(summary.combined, 0u);  // the hot ranges were batch-executed
}

TEST(MiniKyoto, ConcurrentFibersKeepTableConsistent) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  using Db = apps::MiniKyotoDb<SimPlatform, locks::McsLock<SimPlatform>>;
  Db db(SmallKyoto());
  for (int t = 0; t < 8; ++t) {
    m.Spawn([&, t] {
      XorShift64 rng = XorShift64::FromSeed(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 150; ++i) {
        db.WickedOp(rng);
      }
    });
  }
  m.Run();
  // Post-condition: single-threaded ops still behave.
  db.SetLocked(123456, 7);
  EXPECT_EQ(db.GetLocked(123456), 7u);
}


TEST(MiniLevelDb, LruCacheRespectsCapacity) {
  apps::MiniLevelDbOptions o;
  o.prefill_keys = 100'000;
  o.cache_capacity_per_shard = 8;
  apps::MiniLevelDb<RealPlatform, RealCna> db(o);
  XorShift64 rng = XorShift64::FromSeed(12);
  // Touch far more keys than 16 shards x 8 slots can hold; eviction must
  // keep the process bounded (validated by completing without growth
  // assertions tripping inside the shard update).
  for (int i = 0; i < 5'000; ++i) {
    (void)db.ReadRandomOp(rng);
  }
  EXPECT_EQ(db.version_refs(), 0u);
}

TEST(MiniKyoto, GetOnEmptyAndRemoveOnMissing) {
  apps::MiniKyotoDb<RealPlatform, RealCna> db(SmallKyoto());
  EXPECT_EQ(db.GetLocked(42), 0u);
  EXPECT_FALSE(db.RemoveLocked(42));
}

// ---------- MiniLevelDb cache shards on the reader-writer lock table ----------

// The cache-shard path moved from LockTable::Guard (every lookup exclusive)
// to RwLockTable::ReadGuard for lookups + WriteGuard for mutations.  Observable
// behavior must be unchanged: Get() results, snapshot refcounts, and the
// per-shard capacity bound.

TEST(MiniLevelDbRwCache, GetResultsUnchangedAcrossHitsAndMisses) {
  using Db = apps::MiniLevelDb<RealPlatform, RealCna>;
  Db db(SmallDb(5'000));
  // First pass populates the cache (misses -> WriteGuard inserts); second
  // pass hits (ReadGuard-only path).  Values must be identical both times.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t k : {0ull, 7ull, 999ull, 4'999ull}) {
      const auto v = db.Get(k);
      ASSERT_TRUE(v.has_value()) << "pass " << pass << " key " << k;
      EXPECT_EQ(*v, Db::MixValue(k));
    }
  }
  EXPECT_EQ(db.version_refs(), 0u);
}

TEST(MiniLevelDbRwCache, CapacityBoundHoldsWithSecondChanceEviction) {
  apps::MiniLevelDbOptions o;
  o.prefill_keys = 50'000;
  o.cache_shards = 4;
  o.cache_capacity_per_shard = 16;
  apps::MiniLevelDb<RealPlatform, RealCna> db(o);
  XorShift64 rng = XorShift64::FromSeed(21);
  for (int i = 0; i < 4'000; ++i) {
    (void)db.ReadRandomOp(rng);
  }
  for (std::size_t s = 0; s < db.cache_shard_locks().stripes(); ++s) {
    EXPECT_LE(db.CacheShardSize(s), o.cache_capacity_per_shard) << s;
  }
}

TEST(MiniLevelDbRwCache, CacheLookupsAreReadDominated) {
  apps::MiniLevelDbOptions o;
  o.prefill_keys = 256;  // small key space: the cache converges to all-hits
  o.cache_capacity_per_shard = 64;
  o.cache_stats = true;
  apps::MiniLevelDb<RealPlatform, RealCna> db(o);
  XorShift64 rng = XorShift64::FromSeed(5);
  for (int i = 0; i < 5'000; ++i) {
    (void)db.ReadRandomOp(rng);
  }
  const auto s = db.cache_shard_locks().StatsSummary();
  // Every lookup takes the stripe shared; only the initial misses (bounded by
  // the key space) took it exclusively.
  EXPECT_GE(s.read_acquisitions, 5'000u);
  EXPECT_LE(s.write_acquisitions, 256u);
  EXPECT_GT(s.ReadShare(), 0.9);
}

TEST(MiniLevelDbRwCache, ConcurrentFibersStillConsistent) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  using Db = apps::MiniLevelDb<SimPlatform, locks::CnaLock<SimPlatform>>;
  Db db(SmallDb(2'000));
  int misses = 0;
  for (int t = 0; t < 8; ++t) {
    m.Spawn([&, t] {
      XorShift64 rng = XorShift64::FromSeed(30 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 120; ++i) {
        misses += db.ReadRandomOp(rng).has_value() ? 0 : 1;
      }
    });
  }
  m.Run();
  EXPECT_EQ(misses, 0);
  EXPECT_EQ(db.version_refs(), 0u);
}

}  // namespace
}  // namespace cna
