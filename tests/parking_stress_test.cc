// Real-thread stress tests for the parking subsystem -- the TSan leg's
// coverage of parking/parking_lot.h and the blocking table/GCR/qspinlock
// paths, with exact park/unpark accounting.
//
// The accounting invariant (checked at quiescence after every scenario):
//
//   enqueues == unparks + timeouts + cancels
//
// -- every waiter that published into the lot left it by exactly one exit --
// plus TotalWaitersApprox() == 0 (nobody is still published; with no
// concurrent traffic the approximate census is exact).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "locks/gcr.h"
#include "locks/tas.h"
#include "locktable/gcr_table.h"
#include "locktable/lock_table.h"
#include "locktable/rw_lock_table.h"
#include "locks/cna_rwlock.h"
#include "parking/parking_lot.h"
#include "platform/real_platform.h"

namespace cna {
namespace {

using RealLot = parking::ParkingLot<RealPlatform>;

int StressThreads() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Oversubscribe: blocking only matters when threads outnumber CPUs.
  return static_cast<int>(std::min(4 * hw, 32u));
}

void ExpectBalanced(const parking::ParkingLotStats& before,
                    const parking::ParkingLotStats& after, RealLot& lot) {
  EXPECT_EQ(after.enqueues - before.enqueues,
            (after.unparks - before.unparks) +
                (after.timeouts - before.timeouts) +
                (after.cancels - before.cancels));
  EXPECT_EQ(lot.TotalWaitersApprox(), 0u);
}

// A counting semaphore built directly on the lot: the canonical
// park/conditionally + publish-then-unpark client.  Acquire parks until a
// permit is available; Release publishes the permit BEFORE unparking, so a
// lost wakeup here would hang the test (timeouts bound the hang to the test
// timeout, and the timeout counter would expose the bug).
class LotSemaphore {
 public:
  explicit LotSemaphore(RealLot& lot, int permits)
      : lot_(lot), permits_(permits) {}

  void Acquire() {
    while (true) {
      int cur = permits_.load(std::memory_order_acquire);
      while (cur > 0) {
        if (permits_.compare_exchange_weak(cur, cur - 1,
                                           std::memory_order_acq_rel)) {
          return;
        }
      }
      lot_.ParkConditionally(
          this, [&] { return permits_.load(std::memory_order_acquire) <= 0; },
          parking::kBlockingParkTimeoutNs);
    }
  }

  void Release() {
    permits_.fetch_add(1, std::memory_order_acq_rel);
    lot_.UnparkOne(this, RealPlatform::CurrentSocket());
  }

 private:
  RealLot& lot_;
  std::atomic<int> permits_;
};

TEST(ParkingStress, SemaphoreAccountingIsExact) {
  auto& lot = RealLot::Global();
  const parking::ParkingLotStats before = lot.Stats();
  LotSemaphore sem(lot, 2);
  const int threads = StressThreads();
  constexpr int kIters = 2000;
  std::atomic<int> in_section{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        sem.Acquire();
        const int now = in_section.fetch_add(1, std::memory_order_acq_rel) + 1;
        int prev = max_seen.load(std::memory_order_relaxed);
        while (now > prev &&
               !max_seen.compare_exchange_weak(prev, now,
                                               std::memory_order_relaxed)) {
        }
        in_section.fetch_sub(1, std::memory_order_acq_rel);
        sem.Release();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_LE(max_seen.load(), 2);
  ExpectBalanced(before, lot.Stats(), lot);
}

TEST(ParkingStress, BlockingLockTable) {
  auto& lot = RealLot::Global();
  const parking::ParkingLotStats before = lot.Stats();
  locktable::LockTable<RealPlatform, locks::TasLock<RealPlatform>> table(
      {.stripes = 2, .blocking = true});
  const int threads = StressThreads();
  constexpr int kIters = 2000;
  std::uint64_t counters[2] = {0, 0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t + i);
        table.Lock(key);
        ++counters[table.StripeOf(key)];
        table.Unlock(key);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counters[0] + counters[1],
            static_cast<std::uint64_t>(threads) * kIters);
  ExpectBalanced(before, lot.Stats(), lot);
}

TEST(ParkingStress, GcrBlockingPromotion) {
  locktable::GcrLockTable<RealPlatform, locks::TasLock<RealPlatform>> table(
      {.stripes = 1, .blocking = true});
  auto& lock = table.StripeLock(0);
  lock.SetActiveLimit(2);
  lock.Engage();
  const int threads = StressThreads();
  constexpr int kIters = 1000;
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        table.Lock(0);
        ++counter;
        table.Unlock(0);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * kIters);
  const auto s = lock.Stats();
  EXPECT_EQ(s.direct + s.passivations,
            static_cast<std::uint64_t>(threads) * kIters);
}

TEST(ParkingStress, BlockingRwTable) {
  auto& lot = RealLot::Global();
  const parking::ParkingLotStats before = lot.Stats();
  locktable::RwLockTable<RealPlatform, locks::CnaRwLock<RealPlatform>> table(
      {.stripes = 1, .blocking = true});
  const int threads = StressThreads();
  constexpr int kIters = 1000;
  std::uint64_t value = 0;
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if ((t + i) % 4 == 0) {
          table.LockExclusive(0);
          ++value;
          table.UnlockExclusive(0);
        } else {
          table.LockShared(0);
          const std::uint64_t v = value;  // racy iff the rw lock is broken
          reads.fetch_add(1 + (v & 0), std::memory_order_relaxed);
          table.UnlockShared(0);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GT(reads.load(), 0u);
  ExpectBalanced(before, lot.Stats(), lot);
}

}  // namespace
}  // namespace cna
