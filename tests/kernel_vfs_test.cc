// Tests for the MiniVfs substrate: fd table semantics, POSIX byte-range
// locks, dcache/lockref behaviour, lockstat accounting, and the four
// will-it-scale drivers.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "kernel/lockstat.h"
#include "kernel/minivfs.h"
#include "kernel/will_it_scale.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using Vfs = kernel::MiniVfs<RealPlatform, qspin::SlowPathKind::kCna>;
using kernel::MiniVfsOptions;

MiniVfsOptions SmallOptions() {
  MiniVfsOptions o;
  o.max_fds = 128;
  return o;
}

TEST(MiniVfsFd, AllocReturnsLowestFreeFd) {
  Vfs vfs(SmallOptions());
  const int ino = vfs.CreateInode();
  EXPECT_EQ(vfs.AllocFd(ino), 0);
  EXPECT_EQ(vfs.AllocFd(ino), 1);
  EXPECT_EQ(vfs.AllocFd(ino), 2);
  vfs.CloseFd(1);
  EXPECT_EQ(vfs.AllocFd(ino), 1);  // lowest free, like __alloc_fd
  EXPECT_EQ(vfs.AllocFd(ino), 3);
}

TEST(MiniVfsFd, ExhaustionReturnsMinusOne) {
  MiniVfsOptions o;
  o.max_fds = 4;
  Vfs vfs(o);
  const int ino = vfs.CreateInode();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(vfs.AllocFd(ino), i);
  }
  EXPECT_EQ(vfs.AllocFd(ino), -1);  // EMFILE
  vfs.CloseFd(2);
  EXPECT_EQ(vfs.AllocFd(ino), 2);
}

TEST(MiniVfsFd, CloseSemantics) {
  Vfs vfs(SmallOptions());
  const int ino = vfs.CreateInode();
  const int fd = vfs.AllocFd(ino);
  EXPECT_EQ(vfs.InodeNumberOfFd(fd), ino);
  EXPECT_TRUE(vfs.CloseFd(fd));
  EXPECT_FALSE(vfs.CloseFd(fd));  // double close
  EXPECT_EQ(vfs.InodeNumberOfFd(fd), -1);
  EXPECT_FALSE(vfs.CloseFd(-1));
  EXPECT_FALSE(vfs.CloseFd(9999));
}

TEST(MiniVfsFd, OpenFdCountTracksBitmap) {
  Vfs vfs(SmallOptions());
  const int ino = vfs.CreateInode();
  EXPECT_EQ(vfs.OpenFdCount(), 0);
  const int a = vfs.AllocFd(ino);
  const int b = vfs.AllocFd(ino);
  EXPECT_EQ(vfs.OpenFdCount(), 2);
  vfs.CloseFd(a);
  vfs.CloseFd(b);
  EXPECT_EQ(vfs.OpenFdCount(), 0);
}

TEST(MiniVfsPosixLocks, ExclusiveConflictsDetected) {
  Vfs vfs(SmallOptions());
  const int ino = vfs.CreateInode();
  const int fd1 = vfs.AllocFd(ino);
  const int fd2 = vfs.AllocFd(ino);
  EXPECT_TRUE(vfs.FcntlSetLk(fd1, 0, 10, /*owner=*/1, /*exclusive=*/true));
  // Overlapping exclusive from another owner: conflict.
  EXPECT_FALSE(vfs.FcntlSetLk(fd2, 5, 10, /*owner=*/2, /*exclusive=*/true));
  // Disjoint range: fine.
  EXPECT_TRUE(vfs.FcntlSetLk(fd2, 10, 5, /*owner=*/2, /*exclusive=*/true));
  // Same owner overlapping: allowed (owner's own locks never conflict).
  EXPECT_TRUE(vfs.FcntlSetLk(fd1, 0, 10, /*owner=*/1, /*exclusive=*/true));
}

TEST(MiniVfsPosixLocks, SharedLocksCoexist) {
  Vfs vfs(SmallOptions());
  const int ino = vfs.CreateInode();
  const int fd = vfs.AllocFd(ino);
  EXPECT_TRUE(vfs.FcntlSetLk(fd, 0, 10, 1, /*exclusive=*/false));
  EXPECT_TRUE(vfs.FcntlSetLk(fd, 0, 10, 2, /*exclusive=*/false));
  // Exclusive over shared: conflict.
  EXPECT_FALSE(vfs.FcntlSetLk(fd, 0, 10, 3, /*exclusive=*/true));
}

TEST(MiniVfsPosixLocks, UnlockRemovesAndUnblocks) {
  Vfs vfs(SmallOptions());
  const int ino = vfs.CreateInode();
  const int fd = vfs.AllocFd(ino);
  EXPECT_TRUE(vfs.FcntlSetLk(fd, 0, 10, 1, true));
  EXPECT_EQ(vfs.FcntlUnlock(fd, 0, 10, 1), 1);
  EXPECT_EQ(vfs.FcntlUnlock(fd, 0, 10, 1), 0);  // nothing left
  EXPECT_TRUE(vfs.FcntlSetLk(fd, 0, 10, 2, true));
}

TEST(MiniVfsPosixLocks, BadFdFails) {
  Vfs vfs(SmallOptions());
  EXPECT_FALSE(vfs.FcntlSetLk(0, 0, 1, 1, true));   // nothing open
  EXPECT_FALSE(vfs.FcntlSetLk(-1, 0, 1, 1, true));
  EXPECT_EQ(vfs.FcntlUnlock(7, 0, 1, 1), 0);
}

TEST(MiniVfsDcache, OpenCloseRoundTrip) {
  Vfs vfs(SmallOptions());
  const int dir = vfs.CreateDirectory();
  const int fd = vfs.Open(dir, /*name=*/42);
  ASSERT_GE(fd, 0);
  EXPECT_GE(vfs.InodeNumberOfFd(fd), 0);
  vfs.Close(fd);
  EXPECT_EQ(vfs.OpenFdCount(), 0);
}

TEST(MiniVfsDcache, ReopenFindsOrRecreatesDentry) {
  Vfs vfs(SmallOptions());
  const int dir = vfs.CreateDirectory();
  std::set<int> inodes;
  for (int i = 0; i < 32; ++i) {
    const int fd = vfs.Open(dir, 7);
    ASSERT_GE(fd, 0);
    inodes.insert(vfs.InodeNumberOfFd(fd));
    vfs.Close(fd);
  }
  // Reclaim is probabilistic (p=1/2 per final dput): across 32 rounds we must
  // see both reuse (same inode) and recreation (multiple inodes).
  EXPECT_GE(inodes.size(), 2u);
  EXPECT_LT(inodes.size(), 32u);
}

TEST(MiniVfsDcache, DistinctNamesGetDistinctDentries) {
  Vfs vfs(SmallOptions());
  const int dir = vfs.CreateDirectory();
  const int fd1 = vfs.Open(dir, 1);
  const int fd2 = vfs.Open(dir, 2);
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  EXPECT_NE(vfs.InodeNumberOfFd(fd1), vfs.InodeNumberOfFd(fd2));
  vfs.Close(fd1);
  vfs.Close(fd2);
}

TEST(MiniVfsDcache, OpenFailsCleanlyWhenFdTableFull) {
  MiniVfsOptions o;
  o.max_fds = 2;
  Vfs vfs(o);
  const int dir = vfs.CreateDirectory();
  const int a = vfs.Open(dir, 1);
  const int b = vfs.Open(dir, 2);
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_EQ(vfs.Open(dir, 3), -1);
  vfs.Close(a);
  EXPECT_GE(vfs.Open(dir, 3), 0);
}

TEST(LockStat, RecordsAndFilters) {
  auto& reg = kernel::LockStatRegistry::Global();
  reg.Reset();
  for (int i = 0; i < 100; ++i) {
    reg.Record("lockA", "siteX", i % 2 == 0);  // 50% contended
    reg.Record("lockB", "siteY", false);       // never contended
  }
  reg.Record("lockC", "siteZ", true);  // contended but only 1 sample
  const auto contended = reg.ContendedLocks(/*min_contention_rate=*/0.1,
                                            /*min_acquisitions=*/10);
  ASSERT_EQ(contended.size(), 1u);
  EXPECT_EQ(contended[0].lock_name, "lockA");
  EXPECT_EQ(contended[0].call_sites, std::vector<std::string>{"siteX"});
  const auto snapshot = reg.Snapshot();
  EXPECT_EQ(snapshot.size(), 3u);
  reg.Reset();
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(LockStat, VfsAccountingHitsExpectedCallSites) {
  auto& reg = kernel::LockStatRegistry::Global();
  reg.Reset();
  MiniVfsOptions o = SmallOptions();
  o.lockstat_accounting = true;
  Vfs vfs(o);
  const int ino = vfs.CreateInode();
  const int fd = vfs.AllocFd(ino);
  vfs.FcntlSetLk(fd, 0, 1, 1, true);
  vfs.FcntlUnlock(fd, 0, 1, 1);
  vfs.CloseFd(fd);
  const int dir = vfs.CreateDirectory();
  const int fd2 = vfs.Open(dir, 5);
  vfs.Close(fd2);

  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& [key, st] : reg.Snapshot()) {
    seen.insert({key.lock_name, key.call_site});
  }
  EXPECT_TRUE(seen.count({"files_struct.file_lock", "__alloc_fd"}));
  EXPECT_TRUE(seen.count({"files_struct.file_lock", "__close_fd"}));
  EXPECT_TRUE(seen.count({"files_struct.file_lock", "fcntl_setlk"}));
  EXPECT_TRUE(seen.count({"file_lock_context.flc_lock", "posix_lock_inode"}));
  EXPECT_TRUE(seen.count({"lockref.lock", "lockref_get_not_zero"}) ||
              seen.count({"lockref.lock", "d_alloc"}) ||
              seen.count({"lockref.lock", "dput"}));
  reg.Reset();
}

// ---------- will-it-scale drivers ----------

template <kernel::WisBenchmark B>
void SingleThreadDriverWorks() {
  kernel::WillItScale<RealPlatform, qspin::SlowPathKind::kCna> bench(
      B, /*num_threads=*/2, SmallOptions());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(bench.Op(0)) << "iteration " << i;
    EXPECT_TRUE(bench.Op(1)) << "iteration " << i;
  }
}

TEST(WillItScale, Lock1SingleThread) {
  SingleThreadDriverWorks<kernel::WisBenchmark::kLock1>();
}
TEST(WillItScale, Lock2SingleThread) {
  SingleThreadDriverWorks<kernel::WisBenchmark::kLock2>();
}
TEST(WillItScale, Open1SingleThread) {
  SingleThreadDriverWorks<kernel::WisBenchmark::kOpen1>();
}
TEST(WillItScale, Open2SingleThread) {
  SingleThreadDriverWorks<kernel::WisBenchmark::kOpen2>();
}

TEST(WillItScale, NamesAreStable) {
  EXPECT_STREQ(kernel::WisBenchmarkName(kernel::WisBenchmark::kLock1),
               "lock1_threads");
  EXPECT_STREQ(kernel::WisBenchmarkName(kernel::WisBenchmark::kOpen2),
               "open2_threads");
  EXPECT_EQ(kernel::AllWisBenchmarks().size(), 4u);
}

TEST(WillItScale, ConcurrentFibersOnSim) {
  for (auto b : kernel::AllWisBenchmarks()) {
    sim::MachineConfig cfg;
    cfg.topology = numa::Topology::Uniform(2, 4);
    sim::Machine m(cfg);
    kernel::WillItScale<SimPlatform, qspin::SlowPathKind::kCna> bench(
        b, /*num_threads=*/8, SmallOptions());
    int failures = 0;
    for (int t = 0; t < 8; ++t) {
      m.Spawn([&, t] {
        for (int i = 0; i < 60; ++i) {
          failures += bench.Op(t) ? 0 : 1;
        }
      });
    }
    m.Run();
    EXPECT_EQ(failures, 0) << kernel::WisBenchmarkName(b);
  }
}

TEST(WillItScale, FdsDoNotLeakAcrossOps) {
  kernel::WillItScale<RealPlatform, qspin::SlowPathKind::kMcs> bench(
      kernel::WisBenchmark::kOpen1, 1, SmallOptions());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bench.Op(0));
  }
  EXPECT_EQ(bench.vfs().OpenFdCount(), 0);
}

}  // namespace
}  // namespace cna
