// Common correctness tests applied to EVERY lock implementation, on both
// platforms:
//  * mutual exclusion and progress with real OS threads (RealPlatform),
//  * mutual exclusion and progress with simulated fibers (SimPlatform),
//  * state-size (footprint) assertions backing the paper's space claims,
//  * try-lock semantics where supported.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "locks/clh.h"
#include "locks/cna.h"
#include "locks/cohort.h"
#include "locks/cst.h"
#include "locks/hbo.h"
#include "locks/hmcs.h"
#include "locks/lock_api.h"
#include "locks/mcs.h"
#include "locks/mcscr.h"
#include "locks/tas.h"
#include "locks/ticket.h"
#include "platform/real_platform.h"
#include "platform/thread_context.h"
#include "qspin/qspinlock.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using locks::ScopedLock;

// ---------- Real-thread typed tests ----------

template <typename L>
class RealLockTest : public ::testing::Test {};

using RealLockTypes = ::testing::Types<
    locks::McsLock<RealPlatform>, locks::CnaLock<RealPlatform>,
    locks::CnaLock<RealPlatform, locks::CnaShuffleReductionConfig>,
    locks::CnaLock<RealPlatform, locks::CnaSocketInNextConfig>,
    locks::McscrLock<RealPlatform>, locks::TasLock<RealPlatform>, locks::TtasLock<RealPlatform>,
    locks::BackoffTasLock<RealPlatform>, locks::TicketLock<RealPlatform>,
    locks::PartitionedTicketLock<RealPlatform>, locks::ClhLock<RealPlatform>,
    locks::HboLock<RealPlatform>, locks::CBoMcsLock<RealPlatform>,
    locks::CTktTktLock<RealPlatform>, locks::CPtlTktLock<RealPlatform>,
    locks::HmcsLock<RealPlatform>, locks::CstLock<RealPlatform>,
    qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kMcs>,
    qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kCna>>;
TYPED_TEST_SUITE(RealLockTest, RealLockTypes);

TYPED_TEST(RealLockTest, SingleThreadLockUnlock) {
  TypeParam lock;
  for (int i = 0; i < 100; ++i) {
    typename TypeParam::Handle h;
    lock.Lock(h);
    lock.Unlock(h);
  }
  SUCCEED();
}

TYPED_TEST(RealLockTest, MutualExclusionAcrossThreads) {
  TypeParam lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  std::uint64_t counter = 0;  // deliberately non-atomic
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Virtual sockets so NUMA-aware locks exercise cross-socket paths.
      platform::ThreadContext::Current().SetVirtualSocket(t % 2);
      for (int i = 0; i < kIters; ++i) {
        ScopedLock<TypeParam> guard(lock);
        if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
          violation.store(true, std::memory_order_relaxed);
        }
        ++counter;
        in_cs.fetch_sub(1, std::memory_order_acq_rel);
      }
      platform::ThreadContext::Current().SetVirtualSocket(
          platform::ThreadContext::kAutoSocket);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(RealLockTest, NestingTwoDistinctLocks) {
  TypeParam a;
  TypeParam b;
  constexpr int kThreads = 3;
  constexpr int kIters = 500;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      platform::ThreadContext::Current().SetVirtualSocket(t % 2);
      for (int i = 0; i < kIters; ++i) {
        typename TypeParam::Handle ha;
        typename TypeParam::Handle hb;
        a.Lock(ha);
        b.Lock(hb);
        ++counter;
        b.Unlock(hb);
        a.Unlock(ha);
      }
      platform::ThreadContext::Current().SetVirtualSocket(
          platform::ThreadContext::kAutoSocket);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(RealLockTest, StateBytesAreDeclared) {
  EXPECT_GT(TypeParam::kStateBytes, 0u);
}

// ---------- Try-lock tests (only for locks that support it) ----------

template <typename L>
class TryLockTest : public ::testing::Test {};

using TryLockTypes = ::testing::Types<
    locks::McsLock<RealPlatform>, locks::CnaLock<RealPlatform>,
    locks::TasLock<RealPlatform>, locks::TtasLock<RealPlatform>,
    locks::BackoffTasLock<RealPlatform>, locks::TicketLock<RealPlatform>,
    locks::HboLock<RealPlatform>,
    qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kMcs>,
    qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kCna>>;
TYPED_TEST_SUITE(TryLockTest, TryLockTypes);

TYPED_TEST(TryLockTest, TryLockSucceedsWhenFree) {
  TypeParam lock;
  typename TypeParam::Handle h;
  ASSERT_TRUE(lock.TryLock(h));
  lock.Unlock(h);
  // And again: the unlock must have fully released.
  typename TypeParam::Handle h2;
  ASSERT_TRUE(lock.TryLock(h2));
  lock.Unlock(h2);
}

TYPED_TEST(TryLockTest, TryLockFailsWhenHeld) {
  TypeParam lock;
  typename TypeParam::Handle holder;
  lock.Lock(holder);
  std::atomic<int> result{-1};
  std::thread t([&] {
    typename TypeParam::Handle h;
    result.store(lock.TryLock(h) ? 1 : 0);
    if (result.load() == 1) {
      lock.Unlock(h);
    }
  });
  t.join();
  EXPECT_EQ(result.load(), 0);
  lock.Unlock(holder);
}

// ---------- Simulated-fiber typed tests ----------

template <typename L>
class SimLockTest : public ::testing::Test {};

using SimLockTypes = ::testing::Types<
    locks::McsLock<SimPlatform>, locks::CnaLock<SimPlatform>,
    locks::CnaLock<SimPlatform, locks::CnaShuffleReductionConfig>,
    locks::CnaLock<SimPlatform, locks::CnaSocketInNextConfig>,
    locks::McscrLock<SimPlatform>, locks::TasLock<SimPlatform>, locks::TtasLock<SimPlatform>,
    locks::BackoffTasLock<SimPlatform>, locks::TicketLock<SimPlatform>,
    locks::PartitionedTicketLock<SimPlatform>, locks::ClhLock<SimPlatform>,
    locks::HboLock<SimPlatform>, locks::CBoMcsLock<SimPlatform>,
    locks::CTktTktLock<SimPlatform>, locks::CPtlTktLock<SimPlatform>,
    locks::HmcsLock<SimPlatform>, locks::CstLock<SimPlatform>,
    qspin::QSpinLock<SimPlatform, qspin::SlowPathKind::kMcs>,
    qspin::QSpinLock<SimPlatform, qspin::SlowPathKind::kCna>>;
TYPED_TEST_SUITE(SimLockTest, SimLockTypes);

TYPED_TEST(SimLockTest, MutualExclusionOnSimulatedMachine) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  TypeParam lock;
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::uint64_t counter = 0;
  int in_cs = 0;
  bool violation = false;
  for (int t = 0; t < kThreads; ++t) {
    m.Spawn([&] {
      for (int i = 0; i < kIters; ++i) {
        ScopedLock<TypeParam> guard(lock);
        violation |= (in_cs++ != 0);
        ++counter;
        --in_cs;
      }
    });
  }
  m.Run();
  EXPECT_FALSE(violation);
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(SimLockTest, AllFibersMakeProgress) {
  // Starvation check at modest scale: every fiber must finish its quota.
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 8);
  sim::Machine m(cfg);
  TypeParam lock;
  constexpr int kThreads = 12;
  std::vector<int> done(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    m.Spawn([&, t] {
      for (int i = 0; i < 100; ++i) {
        ScopedLock<TypeParam> guard(lock);
        ++done[static_cast<std::size_t>(t)];
      }
    });
  }
  m.Run();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(done[static_cast<std::size_t>(t)], 100) << "thread " << t;
  }
}

// ---------- Footprint: the paper's space argument ----------

TEST(Footprint, CnaIsExactlyOneWord) {
  // The headline claim: "a compact NUMA-aware lock ... requires one word of
  // memory, regardless of the number of sockets".
  EXPECT_EQ(sizeof(locks::CnaLock<RealPlatform>), sizeof(void*));
  EXPECT_EQ(sizeof(locks::McsLock<RealPlatform>), sizeof(void*));
  EXPECT_EQ(locks::CnaLock<RealPlatform>::kStateBytes, sizeof(void*));
}

TEST(Footprint, QspinlockIsFourBytes) {
  // "The Linux kernel ... strictly limits the size of its spin lock to 4
  // bytes" -- and the CNA variant must not grow it.
  using Stock = qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kMcs>;
  using Cna = qspin::QSpinLock<RealPlatform, qspin::SlowPathKind::kCna>;
  EXPECT_EQ(sizeof(Stock), 4u);
  EXPECT_EQ(sizeof(Cna), 4u);
}

TEST(Footprint, HierarchicalLocksGrowWithSockets) {
  // Cohort/HMCS state is O(sockets * cache line): at least one line per
  // potential socket, dwarfing CNA's single word.
  EXPECT_GE(sizeof(locks::CBoMcsLock<RealPlatform>),
            8u * kCacheLineSize);
  EXPECT_GE(sizeof(locks::HmcsLock<RealPlatform>), 8u * kCacheLineSize);
  EXPECT_GT(locks::CBoMcsLock<RealPlatform>::kStateBytes,
            64u * locks::CnaLock<RealPlatform>::kStateBytes);
}

TEST(Footprint, CstGrowsLazilyWithTouchedSockets) {
  locks::CstLock<RealPlatform> lock;
  EXPECT_EQ(lock.DynamicFootprintBytes(), 0u);
  platform::ThreadContext::Current().SetVirtualSocket(0);
  {
    ScopedLock<locks::CstLock<RealPlatform>> g(lock);
  }
  const auto after_one = lock.DynamicFootprintBytes();
  EXPECT_GT(after_one, 0u);
  platform::ThreadContext::Current().SetVirtualSocket(1);
  {
    ScopedLock<locks::CstLock<RealPlatform>> g(lock);
  }
  EXPECT_EQ(lock.DynamicFootprintBytes(), 2 * after_one);
  platform::ThreadContext::Current().SetVirtualSocket(
      platform::ThreadContext::kAutoSocket);
}

// ---------- FIFO property of the pure queue locks ----------

TEST(QueueOrder, McsIsFifoOnSim) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  locks::McsLock<SimPlatform> lock;
  std::vector<int> order;
  constexpr int kThreads = 6;
  for (int t = 0; t < kThreads; ++t) {
    m.Spawn([&, t] {
      // Stagger arrivals so the queue order is t0, t1, ..., t5.
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 500 + 1);
      typename locks::McsLock<SimPlatform>::Handle h;
      lock.Lock(h);
      if (t == 0) {
        // Keep the lock until everyone is queued.
        sim::Machine::Active()->AdvanceLocalWork(100'000);
      }
      order.push_back(t);
      lock.Unlock(h);
    });
  }
  m.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(QueueOrder, TicketIsFifoOnSim) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  sim::Machine m(cfg);
  locks::TicketLock<SimPlatform> lock;
  std::vector<int> order;
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 500 + 1);
      typename locks::TicketLock<SimPlatform>::Handle h;
      lock.Lock(h);
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(100'000);
      }
      order.push_back(t);
      lock.Unlock(h);
    });
  }
  m.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace cna
