// CNA-specific tests: the algorithmic invariants of Figures 2-5, the
// secondary-queue mechanics of Figure 1, the fairness knob, and the Section 6
// optimizations.  Most tests run on the simulator, whose deterministic
// scheduling lets us replay the paper's running example exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "locks/cna.h"
#include "locks/lock_api.h"
#include "locks/mcs.h"
#include "locks/mcscr.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using SimCna = locks::CnaLock<SimPlatform>;

sim::MachineConfig TwoSocketSmall(int cpus_per_socket = 8) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, cpus_per_socket);
  return cfg;
}

// Replays the acquisition pattern of the paper's Figure 1: six threads
// enqueue while t0 holds the lock; sockets alternate 0,1,0,1,0,1 (scatter
// placement).  CNA must serve all same-socket waiters first (t0, t2, t4:
// socket 0), then flush the secondary queue in FIFO order (t1, t3, t5).
TEST(CnaAlgorithm, ServesLocalWaitersThenFlushesSecondaryQueue) {
  sim::Machine m(TwoSocketSmall());
  SimCna lock;
  std::vector<int> order;
  std::vector<int> socket_order;
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&, t] {
      // Arrival order t0 < t1 < ... < t5, all before t0 releases.
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 400 + 1);
      SimCna::Handle h;
      lock.Lock(h);
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(200'000);
      }
      order.push_back(t);
      socket_order.push_back(sim::Machine::Active()->CurrentSocket());
      lock.Unlock(h);
    });
  }
  m.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 1, 3, 5}));
  EXPECT_EQ(socket_order, (std::vector<int>{0, 0, 0, 1, 1, 1}));
}

TEST(CnaAlgorithm, ComparedToMcsWhichStaysFifo) {
  sim::Machine m(TwoSocketSmall());
  locks::McsLock<SimPlatform> lock;
  std::vector<int> order;
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 400 + 1);
      locks::McsLock<SimPlatform>::Handle h;
      lock.Lock(h);
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(200'000);
      }
      order.push_back(t);
      lock.Unlock(h);
    });
  }
  m.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

// Figure 1(d): consecutive same-socket handovers pass the secondary-queue
// designator along unchanged; the handover writes only the successor's spin
// field (copying me->spin), never restructuring the queue.
TEST(CnaAlgorithm, UncontendedAcquireSkipsSocketRecording) {
  sim::Machine m(TwoSocketSmall());
  SimCna lock;
  int recorded_socket = -2;
  m.Spawn([&] {
    SimCna::Handle h;
    lock.Lock(h);
    recorded_socket = h.socket.load();
    lock.Unlock(h);
  });
  m.Run();
  // Uncontended path: Figure 3 line 8 returns before line 10 records the
  // socket -- "when the lock is not contended, this line does not add any
  // overhead".
  EXPECT_EQ(recorded_socket, -1);
}

TEST(CnaAlgorithm, UncontendedSpinFieldHoldsOne) {
  sim::Machine m(TwoSocketSmall());
  SimCna lock;
  std::uintptr_t spin_value = 0;
  m.Spawn([&] {
    SimCna::Handle h;
    lock.Lock(h);
    spin_value = h.spin.load();
    lock.Unlock(h);
  });
  m.Run();
  EXPECT_EQ(spin_value, 1u);  // Figure 3 line 8
}

TEST(CnaAlgorithm, ContendedWaiterRecordsItsSocket) {
  sim::Machine m(TwoSocketSmall());
  SimCna lock;
  std::vector<int> sockets;
  for (int t = 0; t < 2; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 100 + 1);
      SimCna::Handle h;
      lock.Lock(h);
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(50'000);
      } else {
        sockets.push_back(h.socket.load());
      }
      lock.Unlock(h);
    });
  }
  m.Run();
  ASSERT_EQ(sockets.size(), 1u);
  EXPECT_EQ(sockets[0], 1);  // fiber 1 runs on socket 1 (scatter placement)
}

// While waiting in the secondary queue, a node's spin stays 0 and its
// sec_tail designates the queue tail only for the head node.  We verify the
// externally observable effect: remote threads are granted in their original
// order after the flush (FIFO within the secondary queue).
TEST(CnaAlgorithm, SecondaryQueuePreservesFifoAmongRemoteWaiters) {
  sim::Machine m(TwoSocketSmall());
  SimCna lock;
  std::vector<int> order;
  // 8 fibers: even ids socket 0, odd ids socket 1.
  for (int t = 0; t < 8; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 300 + 1);
      SimCna::Handle h;
      lock.Lock(h);
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(300'000);
      }
      order.push_back(t);
      lock.Unlock(h);
    });
  }
  m.Run();
  // Local first (0,2,4,6), then remote in arrival order (1,3,5,7).
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

// Fairness: with an aggressive threshold (flush probability 1/4), remote
// waiters must be served long before the local stream dries up.
struct AggressiveFairnessConfig : locks::CnaDefaultConfig {
  static constexpr std::uint64_t kKeepLocalMask = 0x3;
};

struct CounterConfig : locks::CnaDefaultConfig {
  static constexpr std::uint64_t kKeepLocalMask = 0xf;
  static constexpr bool kCounterFairness = true;
};

struct AlwaysSkipConfig : locks::CnaDefaultConfig {
  static constexpr bool kShuffleReduction = true;
  // rand & mask is nonzero with probability 255/256: almost always skip.
  static constexpr std::uint64_t kShuffleMask = 0xff;
};

TEST(CnaFairness, SecondaryQueueIsFlushedProbabilistically) {
  sim::Machine m(TwoSocketSmall());
  locks::CnaLock<SimPlatform, AggressiveFairnessConfig> lock;
  // Two fibers per socket ping-ponging for a while; count how many times
  // socket 1 fibers get the lock while socket 0 keeps re-acquiring.
  std::map<int, int> grants_by_socket;
  constexpr int kIters = 400;
  for (int t = 0; t < 4; ++t) {
    m.Spawn([&] {
      for (int i = 0; i < kIters; ++i) {
        locks::ScopedLock<locks::CnaLock<SimPlatform, AggressiveFairnessConfig>>
            g(lock);
        ++grants_by_socket[sim::Machine::Active()->CurrentSocket()];
      }
    });
  }
  m.Run();
  EXPECT_EQ(grants_by_socket[0] + grants_by_socket[1], 4 * kIters);
  EXPECT_EQ(grants_by_socket[0], 2 * kIters);
  EXPECT_EQ(grants_by_socket[1], 2 * kIters);
}

TEST(CnaFairness, CounterModeAlsoFlushes) {
  sim::Machine m(TwoSocketSmall());
  locks::CnaLock<SimPlatform, CounterConfig> lock;
  std::vector<int> done(4, 0);
  for (int t = 0; t < 4; ++t) {
    m.Spawn([&, t] {
      for (int i = 0; i < 200; ++i) {
        locks::ScopedLock<locks::CnaLock<SimPlatform, CounterConfig>> g(lock);
        ++done[static_cast<std::size_t>(t)];
      }
    });
  }
  m.Run();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(done[static_cast<std::size_t>(t)], 200);
  }
}

// Shuffle reduction (Section 6): with an empty secondary queue the lock is
// usually handed FIFO.  Observable effect: under the all-local pattern, the
// CNA(opt) handover order equals MCS's FIFO order.
TEST(CnaShuffleReduction, MostHandoversAreFifoWhenSecondaryEmpty) {
  auto cfg = TwoSocketSmall();
  cfg.placement = sim::Placement::kPackSockets;  // all on socket 0
  sim::Machine m(cfg);
  locks::CnaLock<SimPlatform, AlwaysSkipConfig> lock;
  std::vector<int> order;
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 400 + 1);
      typename locks::CnaLock<SimPlatform, AlwaysSkipConfig>::Handle h;
      lock.Lock(h);
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(200'000);
      }
      order.push_back(t);
      lock.Unlock(h);
    });
  }
  m.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

// The unlock CAS path: a holder with an empty main queue hands the lock back
// to "free" (tail -> nullptr); a later arrival takes the uncontended path.
TEST(CnaAlgorithm, ReleaseToEmptyQueueRestoresFreeState) {
  sim::Machine m(TwoSocketSmall());
  SimCna lock;
  int acquisitions = 0;
  m.Spawn([&] {
    for (int i = 0; i < 5; ++i) {
      SimCna::Handle h;
      lock.Lock(h);
      ++acquisitions;
      lock.Unlock(h);
      sim::Machine::Active()->AdvanceLocalWork(100);
    }
  });
  m.Run();
  EXPECT_EQ(acquisitions, 5);
}

// Race window in unlock: the CAS to nullptr fails because a new waiter
// swapped the tail but has not linked yet; the holder must wait for the link
// and then hand over.  Reproduce with two fibers whose clocks collide.
TEST(CnaAlgorithm, UnlockWaitsForLateLinkingSuccessor) {
  sim::Machine m(TwoSocketSmall());
  SimCna lock;
  std::vector<int> order;
  for (int t = 0; t < 2; ++t) {
    m.Spawn([&, t] {
      SimCna::Handle h;
      // Near-simultaneous arrival: both at clock ~0.
      lock.Lock(h);
      order.push_back(t);
      lock.Unlock(h);
    });
  }
  m.Run();
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0] + order[1], 1);  // both ran, in some order
}

// TryLock must not disturb the queue.
TEST(CnaAlgorithm, TryLockSemantics) {
  locks::CnaLock<RealPlatform> lock;
  locks::CnaLock<RealPlatform>::Handle a;
  locks::CnaLock<RealPlatform>::Handle b;
  ASSERT_TRUE(lock.TryLock(a));
  EXPECT_FALSE(lock.TryLock(b));
  lock.Unlock(a);
  ASSERT_TRUE(lock.TryLock(b));
  lock.Unlock(b);
}

// Long-term fairness factor stays near 0.5 even with the paper's default
// threshold, over a long enough horizon (Section 7.1.1 / Figure 8).
TEST(CnaFairness, AllThreadsFinishWithDefaultThreshold) {
  sim::Machine m(TwoSocketSmall(4));
  SimCna lock;
  constexpr int kThreads = 8;
  constexpr int kIters = 250;
  std::vector<int> done(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    m.Spawn([&, t] {
      for (int i = 0; i < kIters; ++i) {
        locks::ScopedLock<SimCna> g(lock);
        ++done[static_cast<std::size_t>(t)];
      }
    });
  }
  m.Run();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(done[static_cast<std::size_t>(t)], kIters) << "thread " << t;
  }
}


// ---------- Section 6 socket-in-next-pointer encoding ----------

using TaggedCna = locks::CnaLock<SimPlatform, locks::CnaSocketInNextConfig>;

TEST(CnaTagged, SameReorderingAsBaseCna) {
  // The tagged variant must make identical policy decisions -- replay the
  // Figure 1 scenario and expect the same order as the base lock.
  sim::Machine m(TwoSocketSmall());
  TaggedCna lock;
  std::vector<int> order;
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 400 + 1);
      TaggedCna::Handle h;
      lock.Lock(h);
      if (t == 0) {
        sim::Machine::Active()->AdvanceLocalWork(200'000);
      }
      order.push_back(t);
      lock.Unlock(h);
    });
  }
  m.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 1, 3, 5}));
}

TEST(CnaTagged, StillOneWordOfState) {
  EXPECT_EQ(sizeof(TaggedCna), sizeof(void*));
}

TEST(CnaTagged, AvoidsSuccessorNodeTouchOnLocalityCheck) {
  // With tagging, find_successor can classify the immediate successor from
  // the pointer tag alone: fewer loads than the untagged variant on the
  // same deterministic scenario.
  auto run = [](auto lock_tag) {
    using L = decltype(lock_tag);
    sim::Machine m(TwoSocketSmall());
    L lock;
    for (int t = 0; t < 6; ++t) {
      m.Spawn([&, t] {
        sim::Machine::Active()->AdvanceLocalWork(
            static_cast<std::uint64_t>(t) * 400 + 1);
        typename L::Handle h;
        lock.Lock(h);
        if (t == 0) {
          sim::Machine::Active()->AdvanceLocalWork(200'000);
        }
        lock.Unlock(h);
      });
    }
    m.Run();
    return m.TotalStats().loads;
  };
  const auto tagged_loads = run(TaggedCna{});
  const auto plain_loads = run(SimCna{});
  EXPECT_LT(tagged_loads, plain_loads);
}

// ---------- Section 7.1.1 queue-alteration statistics ----------

struct StatsConfig : locks::CnaDefaultConfig {
  static constexpr bool kCollectStats = true;
};
struct StatsOptConfig : StatsConfig {
  static constexpr bool kShuffleReduction = true;
  static constexpr std::uint64_t kShuffleMask = 0xff;
};

TEST(CnaStats, CountersAccountForEveryRelease) {
  locks::GlobalCnaCounters().Reset();
  sim::Machine m(TwoSocketSmall());
  locks::CnaLock<SimPlatform, StatsConfig> lock;
  constexpr int kThreads = 6;
  constexpr int kIters = 200;
  for (int t = 0; t < kThreads; ++t) {
    m.Spawn([&] {
      for (int i = 0; i < kIters; ++i) {
        locks::ScopedLock<locks::CnaLock<SimPlatform, StatsConfig>> g(lock);
      }
    });
  }
  m.Run();
  auto& c = locks::GlobalCnaCounters();
  EXPECT_EQ(c.releases.load(), static_cast<std::uint64_t>(kThreads) * kIters);
  // Every handover is classified exactly once (the final release frees the
  // lock and is none of the three).
  EXPECT_LE(c.local_handovers.load() + c.secondary_flushes.load() +
                c.fifo_handovers.load(),
            c.releases.load());
  EXPECT_GT(c.local_handovers.load(), 0u);
  locks::GlobalCnaCounters().Reset();
}

TEST(CnaStats, ShuffleReductionCutsQueueAlterations) {
  // Paper, Section 7.1.1: the shuffle-reduction optimization reduces the
  // number of times the main queue is altered "by almost a factor of ten at
  // 4 threads".  Reproduce the direction of that result deterministically.
  auto run = [](auto lock_tag) {
    using L = decltype(lock_tag);
    locks::GlobalCnaCounters().Reset();
    sim::Machine m(TwoSocketSmall());
    L lock;
    for (int t = 0; t < 4; ++t) {
      m.Spawn([&] {
        for (int i = 0; i < 400; ++i) {
          {
            locks::ScopedLock<L> g(lock);
            sim::Machine::Active()->AdvanceLocalWork(150);
          }
          // External work long enough that the queue regularly drains and
          // refills mixed -- the light-contention regime of Figure 9's
          // 4-thread point, where the paper measured the 10x reduction.
          sim::Machine::Active()->AdvanceLocalWork(
              1000 + sim::Machine::Active()->Random() % 1000);
        }
      });
    }
    m.Run();
    return locks::GlobalCnaCounters().queue_alterations.load();
  };
  const auto base = run(locks::CnaLock<SimPlatform, StatsConfig>{});
  const auto opt = run(locks::CnaLock<SimPlatform, StatsOptConfig>{});
  EXPECT_LT(opt * 2, base) << "base=" << base << " opt=" << opt;
  locks::GlobalCnaCounters().Reset();
}

// ---------- MCSCR (Malthusian MCS) ----------

TEST(Mcscr, CullsIntoPassiveListUnderContention) {
  sim::Machine m(TwoSocketSmall());
  locks::McscrLock<SimPlatform> lock;
  int max_passive = 0;
  for (int t = 0; t < 8; ++t) {
    m.Spawn([&, t] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(t) * 300 + 1);
      for (int i = 0; i < 100; ++i) {
        locks::ScopedLock<locks::McscrLock<SimPlatform>> g(lock);
        max_passive = std::max(max_passive, lock.PassiveCountApprox());
      }
    });
  }
  m.Run();
  EXPECT_GT(max_passive, 0);        // culling happened
  EXPECT_EQ(lock.PassiveCountApprox(), 0);  // and fully drained at the end
}

TEST(Mcscr, TwoWordsOfState) {
  EXPECT_EQ(locks::McscrLock<RealPlatform>::kStateBytes, 2 * sizeof(void*));
}

}  // namespace
}  // namespace cna
