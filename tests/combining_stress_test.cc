// Real-thread stress of the flat-combining table: mixed Apply / Guard /
// Submit users on the same stripes (this file runs in the CI TSan job's
// real-thread filter).
//
// The accounting invariant under stress: every Apply/Submit operation is
// executed exactly once, by its submitter or by a combiner, so per stripe
// combined + pass_through equals the number of operations issued against
// that stripe -- and no increment is ever lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "apps/sharded_kv.h"
#include "core/pthread_api.h"
#include "locks/cna.h"
#include "locktable/combining.h"
#include "platform/real_platform.h"

namespace cna {
namespace {

using RealCombining =
    locktable::CombiningTable<RealPlatform, locks::CnaLock<RealPlatform>>;

TEST(CombiningStress, MixedApplyGuardUsersBalancePerStripeCounters) {
  RealCombining table({.stripes = 4,
                       .collect_stats = true,
                       .combining_budget = 8});
  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 2000;
  // Shared counters, one per stripe, mutated only under the stripe's lock
  // (inside closures and Guard sections); a lost update or a torn batch
  // shows up as a mismatch against the issued-op counts.
  std::vector<std::uint64_t> guarded(table.stripes(), 0);
  // Per-thread, per-stripe counts of issued Apply/Submit operations (Guard
  // sections are lock users, not published operations, and are counted
  // separately).
  std::vector<std::vector<std::uint64_t>> issued(
      kThreads, std::vector<std::uint64_t>(table.stripes(), 0));
  std::vector<std::vector<std::uint64_t>> guard_ops(
      kThreads, std::vector<std::uint64_t>(table.stripes(), 0));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      XorShift64 rng =
          XorShift64::FromSeed(0xc0de + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        // Skew: ~two thirds of the traffic on one hot key.
        const std::uint64_t key =
            rng.NextBelow(3) != 0 ? 0 : rng.NextBelow(64);
        const std::size_t s = table.StripeOf(key);
        const std::uint64_t roll = rng.NextBelow(10);
        if (roll < 6) {
          table.Apply(key, [&guarded, s] { guarded[s]++; });
          issued[static_cast<std::size_t>(t)][s]++;
        } else if (roll < 8) {
          auto f = table.Submit(key, [&guarded, s] { guarded[s]++; });
          f.Wait();
          issued[static_cast<std::size_t>(t)][s]++;
        } else {
          typename RealCombining::Guard guard(table, key);
          guarded[s]++;
          guard_ops[static_cast<std::size_t>(t)][s]++;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  std::uint64_t total_issued = 0;
  for (std::size_t s = 0; s < table.stripes(); ++s) {
    std::uint64_t issued_here = 0;
    std::uint64_t guards_here = 0;
    for (int t = 0; t < kThreads; ++t) {
      issued_here += issued[static_cast<std::size_t>(t)][s];
      guards_here += guard_ops[static_cast<std::size_t>(t)][s];
    }
    const auto* c = table.CombiningStripeStats(s);
    ASSERT_NE(c, nullptr);
    // The defining invariant: every published op executed exactly once.
    EXPECT_EQ(c->combined.load() + c->pass_through.load(), issued_here)
        << "stripe " << s;
    // And nothing was lost: the guarded counter saw every mutation.
    EXPECT_EQ(guarded[s], issued_here + guards_here) << "stripe " << s;
    total_issued += issued_here;
  }
  const auto summary = table.CombiningSummary();
  EXPECT_EQ(summary.TotalOps(), total_issued);
}

TEST(CombiningStress, CombiningShardedKvLosesNoIncrements) {
  apps::CombiningShardedKvOptions o;
  o.key_range = 256;
  o.lock_stripes = 8;
  o.collect_stats = true;
  o.hot_pct = 80;
  o.cs_compute_ns = 0;
  apps::CombiningShardedKv<RealPlatform, locks::CnaLock<RealPlatform>> kv(o);
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      XorShift64 rng =
          XorShift64::FromSeed(0xfeed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        kv.HotOp(rng);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Every HotOp is one Add(key, 1): the sum over all slots equals the op
  // count exactly iff no increment was lost or doubled.
  EXPECT_EQ(kv.TotalValue(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  const auto summary = kv.table().CombiningSummary();
  EXPECT_EQ(summary.TotalOps(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
}

TEST(CombiningStress, BatchesInterleaveWithSingleOps) {
  RealCombining table({.stripes = 4, .collect_stats = true});
  std::vector<std::uint64_t> cells(32, 0);
  constexpr int kThreads = 4;
  constexpr int kBatches = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t keys[4];
      XorShift64 rng =
          XorShift64::FromSeed(0xabc + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kBatches; ++i) {
        for (auto& k : keys) {
          k = rng.NextBelow(32);
        }
        table.ApplyBatch(keys, 4, [&table, &cells](std::uint64_t key) {
          cells[static_cast<std::size_t>(key)]++;
          (void)table;
        });
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::uint64_t sum = 0;
  for (std::uint64_t v : cells) {
    sum += v;
  }
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kThreads) * kBatches * 4);
}

// C-surface round trip, concurrent: the cna_combining_* API drives the same
// machinery from plain function pointers.
TEST(CombiningStress, CApiRoundTrip) {
  cna_combining_t* table = cna_combining_create("cna", 4);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(cna_combining_stripes(table), 4u);
  EXPECT_EQ(cna_combining_state_bytes(table), 4 * sizeof(void*));
  EXPECT_LT(cna_combining_stripe_of(table, 42), 4u);

  struct Ctx {
    std::atomic<std::uint64_t> sum{0};
  } ctx;
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ASSERT_EQ(cna_combining_apply(
                      table, static_cast<std::uint64_t>(i % 8),
                      [](void* c) {
                        static_cast<Ctx*>(c)->sum.fetch_add(
                            1, std::memory_order_relaxed);
                      },
                      &ctx),
                  0);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(ctx.sum.load(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(cna_combining_pass_through_ops(table) +
                cna_combining_combined_ops(table),
            static_cast<std::uint64_t>(kThreads) * kIters);

  // Lock/unlock coexistence and error mapping.
  EXPECT_EQ(cna_combining_lock(table, 5), 0);
  EXPECT_EQ(cna_combining_unlock(table, 5), 0);
  EXPECT_EQ(cna_combining_unlock(table, 5), EPERM);
  EXPECT_EQ(cna_combining_apply(table, 0, nullptr, nullptr), EINVAL);

  // Unknown names and non-try-lockable kinds are rejected at creation.
  EXPECT_EQ(cna_combining_create("no-such-lock", 4), nullptr);
  EXPECT_EQ(cna_combining_create("clh", 4), nullptr);

  cna_combining_destroy(table);
  cna_combining_destroy(nullptr);  // must be a no-op
}

}  // namespace
}  // namespace cna
