// Tests for the locktorture reproduction.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kernel/locktorture.h"
#include "locks/cna.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using kernel::CombiningLockTorture;
using kernel::LockTorture;
using kernel::LockTortureOptions;

TEST(LockTorture, SingleFiberCompletes) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 2);
  sim::Machine m(cfg);
  LockTorture<SimPlatform, qspin::SlowPathKind::kMcs> torture(
      LockTortureOptions{});
  m.Spawn([&] {
    for (std::uint64_t i = 0; i < 100; ++i) {
      torture.WriterOp(i);
    }
  });
  m.Run();
  EXPECT_EQ(torture.lock().RawValue(), 0u);
  EXPECT_GT(m.FinalTimeNs(), 0u);
}

TEST(LockTorture, ManyFibersBothSlowPaths) {
  for (int use_cna = 0; use_cna < 2; ++use_cna) {
    sim::MachineConfig cfg;
    cfg.topology = numa::Topology::Uniform(2, 8);
    sim::Machine m(cfg);
    std::uint64_t total = 0;
    auto body = [&m, &total](auto& torture) {
      for (int t = 0; t < 12; ++t) {
        m.Spawn([&torture, &total] {
          for (std::uint64_t i = 0; i < 80; ++i) {
            torture.WriterOp(i);
            ++total;
          }
        });
      }
      m.Run();
    };
    if (use_cna) {
      LockTorture<SimPlatform, qspin::SlowPathKind::kCna> torture(
          LockTortureOptions{});
      body(torture);
      EXPECT_EQ(torture.lock().RawValue(), 0u);
    } else {
      LockTorture<SimPlatform, qspin::SlowPathKind::kMcs> torture(
          LockTortureOptions{});
      body(torture);
      EXPECT_EQ(torture.lock().RawValue(), 0u);
    }
    EXPECT_EQ(total, 12u * 80u);
  }
}

TEST(LockTorture, LockstatModeAddsSharedWrites) {
  auto run = [](bool lockstat) {
    sim::MachineConfig cfg;
    cfg.topology = numa::Topology::Uniform(2, 4);
    sim::Machine m(cfg);
    LockTortureOptions o;
    o.lockstat = lockstat;
    o.lockstat_lines = 4;
    LockTorture<SimPlatform, qspin::SlowPathKind::kMcs> torture(o);
    for (int t = 0; t < 4; ++t) {
      m.Spawn([&] {
        for (std::uint64_t i = 0; i < 50; ++i) {
          torture.WriterOp(i);
        }
      });
    }
    m.Run();
    return m.TotalStats().stores;
  };
  const std::uint64_t without = run(false);
  const std::uint64_t with = run(true);
  // 4 threads x 50 ops x 4 stat lines of extra stores, minimum.
  EXPECT_GE(with, without + 4 * 50 * 4);
}

TEST(LockTorture, LongDelayPeriodTriggersLongHolds) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 2);
  sim::Machine m(cfg);
  LockTortureOptions o;
  o.short_delay_ns = 10;
  o.long_delay_ns = 100'000;
  o.long_delay_period = 10;
  LockTorture<SimPlatform, qspin::SlowPathKind::kMcs> torture(o);
  m.Spawn([&] {
    for (std::uint64_t i = 0; i < 20; ++i) {
      torture.WriterOp(i);
    }
  });
  m.Run();
  // 20 ops include 2 long delays: the makespan must reflect them.
  EXPECT_GE(m.FinalTimeNs(), 200'000u);
}

TEST(LockTorture, DeterministicAcrossRuns) {
  auto run = [] {
    sim::MachineConfig cfg;
    cfg.topology = numa::Topology::Uniform(2, 4);
    cfg.seed = 99;
    sim::Machine m(cfg);
    LockTorture<SimPlatform, qspin::SlowPathKind::kCna> torture(
        LockTortureOptions{});
    for (int t = 0; t < 6; ++t) {
      m.Spawn([&] {
        for (std::uint64_t i = 0; i < 60; ++i) {
          torture.WriterOp(i);
        }
      });
    }
    m.Run();
    return m.FinalTimeNs();
  };
  EXPECT_EQ(run(), run());
}

// Combining mode: the same torture mix published against a CombiningTable,
// so the harness exercises combiner handoff and budget cutoffs under the
// kernel module's short/long-delay pattern alongside the raw locks.
TEST(LockTorture, CombiningModeAppliesEveryOp) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 8);
  sim::Machine m(cfg);
  LockTortureOptions o;
  o.short_delay_ns = 200;
  o.long_delay_ns = 5'000;
  o.long_delay_period = 25;
  CombiningLockTorture<SimPlatform, locks::CnaLock<SimPlatform>> torture(
      o, /*stripes=*/2, /*combining_budget=*/4);
  constexpr int kFibers = 10;
  constexpr int kIters = 60;
  for (int t = 0; t < kFibers; ++t) {
    m.Spawn([&torture, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        torture.WriterOp(i, static_cast<std::uint64_t>(t % 3));
      }
    });
  }
  m.Run();
  EXPECT_EQ(torture.OpsApplied(),
            static_cast<std::uint64_t>(kFibers) * kIters);
  // The torture's long holds force publication build-up: the stats must
  // account for every op, and combining must actually have happened.
  const auto summary = torture.table().CombiningSummary();
  EXPECT_EQ(summary.TotalOps(),
            static_cast<std::uint64_t>(kFibers) * kIters);
  EXPECT_GT(summary.combined, 0u);
}

TEST(LockTorture, CombiningModeOnRealThreads) {
  LockTortureOptions o;
  o.short_delay_ns = 50;
  o.long_delay_ns = 2'000;
  o.long_delay_period = 100;
  CombiningLockTorture<RealPlatform, locks::CnaLock<RealPlatform>> torture(
      o, /*stripes=*/2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&torture, t] {
      for (std::uint64_t i = 0; i < 300; ++i) {
        torture.WriterOp(i, static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(torture.OpsApplied(), 900u);
  EXPECT_EQ(torture.table().CombiningSummary().TotalOps(), 900u);
}

// Saturation mode: far more fibers than the active limit admits, restriction
// engaged the whole run.  Every op must still complete (rotation + self-
// admission guarantee no passive fiber is stranded), the surplus must
// actually have been passivated, and the accounting invariant must hold:
// every acquisition is exactly one of direct or passivated-then-admitted.
TEST(LockTorture, GcrSaturationModeCompletesAndPassivates) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 8);
  sim::Machine m(cfg);
  LockTortureOptions o;
  o.short_delay_ns = 100;
  o.long_delay_ns = 2'000;
  o.long_delay_period = 40;
  kernel::GcrLockTorture<SimPlatform, locks::CnaLock<SimPlatform>> torture(
      o, /*active_limit=*/2);
  torture.Engage();
  constexpr int kFibers = 12;
  constexpr int kIters = 40;
  for (int t = 0; t < kFibers; ++t) {
    m.Spawn([&torture] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        torture.WriterOp(i);
      }
    });
  }
  m.Run();
  EXPECT_EQ(torture.Ops(), static_cast<std::uint64_t>(kFibers) * kIters);
  const auto s = torture.lock().Stats();
  EXPECT_EQ(s.total(), static_cast<std::uint64_t>(kFibers) * kIters);
  EXPECT_GT(s.passivations, 0u);
  EXPECT_EQ(torture.lock().PassiveNow(), 0u);
  EXPECT_EQ(torture.lock().ActiveNow(), 0u);
}

TEST(LockTorture, WorksOnRealThreadsToo) {
  LockTorture<RealPlatform, qspin::SlowPathKind::kCna> torture(
      LockTortureOptions{});
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> ops{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < 300; ++i) {
        torture.WriterOp(i);
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(ops.load(), 900u);
  EXPECT_EQ(torture.lock().RawValue(), 0u);
}

}  // namespace
}  // namespace cna
