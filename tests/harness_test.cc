// Tests for the benchmark harness: sim/thread runners and reporting.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/report.h"
#include "harness/runner.h"
#include "locks/cna.h"
#include "locks/lock_api.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

TEST(SimRunner, CountsOpsAndComputesThroughput) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  auto result = harness::RunOnSim(
      cfg, /*threads=*/4, /*window_ns=*/100'000, [](int /*t*/) {
        return [] { SimPlatform::ExternalWork(1'000); };
      });
  EXPECT_EQ(result.threads, 4);
  EXPECT_EQ(result.per_thread_ops.size(), 4u);
  // Each op takes ~1us of a 100us window: ~100 ops per thread.
  for (auto ops : result.per_thread_ops) {
    EXPECT_NEAR(static_cast<double>(ops), 100.0, 2.0);
  }
  EXPECT_NEAR(result.throughput_mops, 4.0, 0.2);  // 4 ops per us aggregate
  EXPECT_NEAR(result.fairness, 0.5, 0.02);
}

TEST(SimRunner, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    sim::MachineConfig cfg;
    cfg.topology = numa::Topology::Uniform(2, 4);
    cfg.seed = 5;
    auto shared = std::make_shared<locks::CnaLock<SimPlatform>>();
    return harness::RunOnSim(cfg, 6, 200'000, [shared](int /*t*/) {
      return [shared] {
        locks::ScopedLock<locks::CnaLock<SimPlatform>> g(*shared);
        SimPlatform::ExternalWork(100);
      };
    });
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.per_thread_ops, b.per_thread_ops);
  EXPECT_DOUBLE_EQ(a.remote_miss_rate, b.remote_miss_rate);
}

TEST(SimRunner, ReportsCacheStats) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 2);
  auto shared = std::make_shared<locks::CnaLock<SimPlatform>>();
  auto result = harness::RunOnSim(cfg, 4, 100'000, [shared](int) {
    return [shared] {
      locks::ScopedLock<locks::CnaLock<SimPlatform>> g(*shared);
    };
  });
  EXPECT_GT(result.cache_stats.Accesses(), 0u);
  EXPECT_GE(result.remote_miss_rate, 0.0);
  EXPECT_LE(result.remote_miss_rate, 1.0);
}

TEST(ThreadRunner, RunsForApproximatelyTheWindow) {
  auto result = harness::RunOnThreads(
      2, std::chrono::milliseconds(50), /*virtual_sockets=*/2,
      [](int) { return [] { RealPlatform::ExternalWork(1'000); }; });
  EXPECT_EQ(result.threads, 2);
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_GT(result.duration_ns, 40'000'000u);
}

TEST(EnvOverrides, BenchWindowDefaultsWhenUnset) {
  unsetenv("CNA_BENCH_WINDOW_MS");
  EXPECT_EQ(harness::BenchWindowNs(123), 123u);
  setenv("CNA_BENCH_WINDOW_MS", "2", 1);
  EXPECT_EQ(harness::BenchWindowNs(123), 2'000'000u);
  setenv("CNA_BENCH_WINDOW_MS", "garbage", 1);
  EXPECT_EQ(harness::BenchWindowNs(123), 123u);
  unsetenv("CNA_BENCH_WINDOW_MS");
}

TEST(EnvOverrides, ClipThreads) {
  unsetenv("CNA_BENCH_MAX_THREADS");
  EXPECT_EQ(harness::ClipThreads({1, 2, 70}), (std::vector<int>{1, 2, 70}));
  setenv("CNA_BENCH_MAX_THREADS", "8", 1);
  EXPECT_EQ(harness::ClipThreads({1, 2, 16, 70}), (std::vector<int>{1, 2}));
  unsetenv("CNA_BENCH_MAX_THREADS");
}

TEST(SeriesTable, TextFormat) {
  harness::SeriesTable t("Figure X: demo", "threads", {"mcs", "cna"});
  t.AddRow(1, {5.30, 5.21});
  t.AddRow(70, {1.70, 2.40});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("Figure X: demo"), std::string::npos);
  EXPECT_NE(text.find("threads"), std::string::npos);
  EXPECT_NE(text.find("mcs"), std::string::npos);
  EXPECT_NE(text.find("5.30"), std::string::npos);
  EXPECT_NE(text.find("70"), std::string::npos);
}

TEST(SeriesTable, CsvFormat) {
  harness::SeriesTable t("fig", "threads", {"a", "b"});
  t.AddRow(2, {1.5, 2.5});
  const std::string csv = t.ToCsv(2);
  EXPECT_NE(csv.find("figure,threads,a,b"), std::string::npos);
  EXPECT_NE(csv.find("\"fig\",2,1.50,2.50"), std::string::npos);
}

TEST(SeriesTable, JsonFormat) {
  harness::SeriesTable t("fig \"quoted\"", "threads", {"a", "b"});
  t.AddRow(2, {1.5, 2.5});
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"title\":\"fig \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"x_label\":\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"series\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(json.find("[2,1.5,2.5]"), std::string::npos);
}

TEST(BenchJson, DocumentAccumulatesTablesAndCurves) {
  harness::ResetBenchJson();
  harness::SetBenchInfo("demo_bench", "threads=4 window_ns=1000");
  harness::SeriesTable t("throughput", "threads", {"cna"});
  t.AddRow(4, {3.25});
  t.Emit();  // prints the text table and adds the JSON form to the document
  harness::RecordRateCurve(
      "locktable.wait_ns", "acquisition rate",
      {telemetry::RatePoint{1'000'000, 2000.0},
       telemetry::RatePoint{2'000'000, 1500.0}});

  const std::string doc = harness::BenchJsonDocument();
  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"demo_bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"config\":\"threads=4 window_ns=1000\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"title\":\"throughput\""), std::string::npos);
  EXPECT_NE(doc.find("\"metric\":\"locktable.wait_ns\""), std::string::npos);
  EXPECT_NE(doc.find("[1000000,2000]"), std::string::npos);

  harness::ResetBenchJson();
  EXPECT_EQ(harness::BenchJsonDocument().find("demo_bench"),
            std::string::npos);
}

TEST(BenchJson, FlushWritesToEnvPath) {
  harness::ResetBenchJson();
  harness::SetBenchInfo("flush_bench", "");
  const std::string path = "/tmp/cna_bench_json_test.json";
  setenv("CNA_BENCH_JSON", path.c_str(), 1);
  EXPECT_TRUE(harness::FlushBenchJson());
  unsetenv("CNA_BENCH_JSON");
  EXPECT_FALSE(harness::FlushBenchJson());  // no path -> no write

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"bench\":\"flush_bench\""), std::string::npos);
  std::remove(path.c_str());
  harness::ResetBenchJson();
}

}  // namespace
}  // namespace cna
