// Tests for the AVL map substrate, including property-style parameterized
// sweeps against std::map as the reference model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>

#include "apps/avl_map.h"
#include "apps/kv_bench.h"
#include "base/rng.h"
#include "locks/cna.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using Map = apps::AvlMap<RealPlatform>;

TEST(AvlMap, EmptyMap) {
  Map m;
  EXPECT_EQ(m.Size(), 0u);
  EXPECT_EQ(m.Height(), 0);
  EXPECT_FALSE(m.Lookup(1).has_value());
  EXPECT_FALSE(m.Erase(1));
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(AvlMap, InsertLookupErase) {
  Map m;
  EXPECT_TRUE(m.Insert(5, 50));
  EXPECT_TRUE(m.Insert(3, 30));
  EXPECT_TRUE(m.Insert(7, 70));
  EXPECT_FALSE(m.Insert(5, 55));  // overwrite, not insert
  EXPECT_EQ(m.Size(), 3u);
  EXPECT_EQ(m.Lookup(5), std::optional<std::int64_t>(55));
  EXPECT_EQ(m.Lookup(3), std::optional<std::int64_t>(30));
  EXPECT_TRUE(m.Erase(3));
  EXPECT_FALSE(m.Erase(3));
  EXPECT_EQ(m.Size(), 2u);
  EXPECT_FALSE(m.Contains(3));
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(AvlMap, AscendingInsertionStaysBalanced) {
  Map m;
  constexpr int kN = 1024;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(m.Insert(i, i));
  }
  EXPECT_EQ(m.Size(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(m.CheckInvariants());
  // AVL height bound: h <= 1.44 log2(n+2).
  EXPECT_LE(m.Height(), static_cast<int>(1.45 * std::log2(kN + 2)) + 1);
}

TEST(AvlMap, DescendingAndZigzagInsertion) {
  Map m;
  for (int i = 512; i > 0; --i) {
    ASSERT_TRUE(m.Insert(i, i));
  }
  for (int i = 513; i < 768; ++i) {
    ASSERT_TRUE(m.Insert((i % 2 == 0) ? i : -i, i));
  }
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(AvlMap, EraseWithTwoChildrenUsesSuccessor) {
  Map m;
  for (int k : {50, 30, 70, 20, 40, 60, 80}) {
    m.Insert(k, k);
  }
  EXPECT_TRUE(m.Erase(50));  // root with two children
  EXPECT_FALSE(m.Contains(50));
  EXPECT_EQ(m.Size(), 6u);
  EXPECT_TRUE(m.CheckInvariants());
  for (int k : {30, 70, 20, 40, 60, 80}) {
    EXPECT_TRUE(m.Contains(k));
  }
}

// Property test: random operation streams must agree with std::map and keep
// the AVL invariants, across seeds and key ranges.
class AvlPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(AvlPropertyTest, AgreesWithReferenceModel) {
  const auto [seed, key_range] = GetParam();
  XorShift64 rng = XorShift64::FromSeed(seed);
  Map m;
  std::map<std::int64_t, std::int64_t> ref;
  for (int step = 0; step < 4000; ++step) {
    const auto key =
        static_cast<std::int64_t>(rng.NextBelow(
            static_cast<std::uint64_t>(key_range)));
    switch (rng.NextBelow(3)) {
      case 0: {
        const bool inserted = m.Insert(key, step);
        EXPECT_EQ(inserted, ref.find(key) == ref.end());
        ref[key] = step;
        break;
      }
      case 1: {
        const bool erased = m.Erase(key);
        EXPECT_EQ(erased, ref.erase(key) == 1);
        break;
      }
      default: {
        const auto got = m.Lookup(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it->second);
        }
      }
    }
    if (step % 512 == 0) {
      ASSERT_TRUE(m.CheckInvariants()) << "seed " << seed << " step " << step;
    }
  }
  EXPECT_EQ(m.Size(), ref.size());
  EXPECT_TRUE(m.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndRangeSweep, AvlPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 17u, 1234u),
                       ::testing::Values(16, 256, 4096)));

TEST(AvlMap, ChargesDataTrafficOnSim) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 2);
  sim::Machine m(cfg);
  apps::AvlMap<SimPlatform> map;
  m.Spawn([&] {
    for (int i = 0; i < 64; ++i) {
      map.Insert(i, i);
    }
    for (int i = 0; i < 64; ++i) {
      (void)map.Lookup(i);
    }
  });
  m.Run();
  const auto st = m.TotalStats();
  EXPECT_GT(st.loads, 64u);   // lookups walk paths
  EXPECT_GT(st.stores, 64u);  // inserts + rebalancing writes
}

// ---------- KvBench (the paper's microbenchmark around the map) ----------

TEST(KvBench, PrefillsRoughlyHalfTheRange) {
  apps::KvBenchOptions o;
  o.key_range = 2048;
  apps::KvBench<RealPlatform, locks::CnaLock<RealPlatform>> bench(o);
  const auto size = bench.map().Size();
  EXPECT_GT(size, 800u);
  EXPECT_LT(size, 1250u);
  EXPECT_TRUE(bench.map().CheckInvariants());
}

TEST(KvBench, OpsKeepInvariantsAndStayInRange) {
  apps::KvBenchOptions o;
  o.key_range = 128;
  o.update_pct = 50;
  apps::KvBench<RealPlatform, locks::CnaLock<RealPlatform>> bench(o);
  XorShift64 rng = XorShift64::FromSeed(5);
  for (int i = 0; i < 2000; ++i) {
    bench.Op(rng);
  }
  EXPECT_TRUE(bench.map().CheckInvariants());
  EXPECT_LE(bench.map().Size(), 128u);
}

TEST(KvBench, ZeroUpdatePctNeverModifies) {
  apps::KvBenchOptions o;
  o.key_range = 64;
  o.update_pct = 0;
  apps::KvBench<RealPlatform, locks::CnaLock<RealPlatform>> bench(o);
  const auto before = bench.map().Size();
  XorShift64 rng = XorShift64::FromSeed(6);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(bench.Op(rng));
  }
  EXPECT_EQ(bench.map().Size(), before);
}

TEST(KvBench, DeterministicPrefillAcrossInstances) {
  apps::KvBenchOptions o;
  o.key_range = 512;
  o.seed = 77;
  apps::KvBench<RealPlatform, locks::CnaLock<RealPlatform>> a(o);
  apps::KvBench<RealPlatform, locks::CnaLock<RealPlatform>> b(o);
  EXPECT_EQ(a.map().Size(), b.map().Size());
  for (int k = 0; k < 512; ++k) {
    EXPECT_EQ(a.map().Contains(k), b.map().Contains(k));
  }
}

}  // namespace
}  // namespace cna
