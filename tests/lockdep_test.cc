// Lockdep-lite tests: class interning, the seeded AB/BA inversion with its
// two-chain witness, the MultiGuard ascending-stripe invariant, the
// park-while-holding detector, folded-stack attribution, the sim machine's
// schedule-exploration gate, and the C surface.
//
// Every scenario that seeds an inversion does so with two DISTINCT classes
// (two tables with different metrics names, or two mutex kinds): same-class
// non-nested pairs deliberately record no edges, because the resizable table
// legitimately nests same-class stripes during migration.
#include <gtest/gtest.h>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pthread_api.h"
#include "locks/cna.h"
#include "locktable/lock_table.h"
#include "parking/parking_lot.h"
#include "platform/real_platform.h"
#include "qspin/qspinlock.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"
#include "telemetry/lockdep.h"
#include "telemetry/metrics.h"

namespace cna {
namespace {

namespace lockdep = telemetry::lockdep;

using RealCna = locks::CnaLock<RealPlatform>;
using SimCna = locks::CnaLock<SimPlatform>;
using RealTable = locktable::LockTable<RealPlatform, RealCna>;
using SimTable = locktable::LockTable<SimPlatform, SimCna>;

// ---------------------------------------------------------------------------
// Zero lock-word growth: lockdep keeps ALL of its state in side tables, so
// every lock's shared-state footprint is identical with the tracker compiled
// in.  These are the seed's published sizes (telemetry_overhead_test.cc);
// if lockdep ever leaked a byte into a lock word, one of these fires at
// compile time.
// ---------------------------------------------------------------------------
static_assert(lockdep::kCompiledIn, "this test binary builds with lockdep");
static_assert(RealCna::kStateBytes == sizeof(void*),
              "CNA lock word grew with lockdep compiled in");
static_assert(qspin::QSpinLock<RealPlatform,
                              qspin::SlowPathKind::kMcs>::kStateBytes ==
                  sizeof(std::uint32_t),
              "qspinlock word grew with lockdep compiled in");
static_assert(RealTable::PerStripeStateBytes() == RealCna::kStateBytes,
              "per-stripe state grew with lockdep compiled in");
static_assert(SimTable::PerStripeStateBytes() == SimCna::kStateBytes,
              "sim per-stripe state grew with lockdep compiled in");

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::Reset();
    lockdep::SetEnabled(true);
  }
  void TearDown() override {
    lockdep::SetEnabled(false);
    lockdep::Reset();
  }
};

TEST_F(LockdepTest, InterningIsIdempotentAndNamed) {
  const int a = lockdep::InternClass("test/intern-a");
  const int b = lockdep::InternClass("test/intern-b");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(lockdep::InternClass("test/intern-a"), a);
  EXPECT_STREQ(lockdep::ClassName(a), "test/intern-a");
  EXPECT_STREQ(lockdep::ClassName(-1), "?");

  const int s = lockdep::InternSite("TestSite::Here");
  EXPECT_EQ(lockdep::InternSite("TestSite::Here"), s);
  EXPECT_STREQ(lockdep::SiteName(s), "TestSite::Here");
}

TEST_F(LockdepTest, ResetPreservesInternedNames) {
  const int a = lockdep::InternClass("test/survives-reset");
  lockdep::Reset();
  EXPECT_EQ(lockdep::InternClass("test/survives-reset"), a);
  EXPECT_STREQ(lockdep::ClassName(a), "test/survives-reset");
  EXPECT_EQ(lockdep::InversionCount(), 0u);
}

// The tentpole scenario: two tables taken A-then-B once, then B-then-A.
// The second order would close a cycle in the class graph, so lockdep
// reports exactly one inversion, with both acquisition chains.
TEST_F(LockdepTest, SeededAbBaInversion) {
  RealTable a({.stripes = 8, .metrics_name = "tblA"});
  RealTable b({.stripes = 8, .metrics_name = "tblB"});

  // A -> B: records the edge tblA/stripe -> tblB/stripe.
  a.LockStripe(1);
  b.LockStripe(2);
  b.UnlockStripe(2);
  a.UnlockStripe(1);
  EXPECT_EQ(lockdep::InversionCount(), 0u);
  EXPECT_GE(lockdep::GetCounts().edges, 1u);

  // B -> A: the reverse order is the deadlock ingredient, even though this
  // single-threaded run can never actually deadlock.
  b.LockStripe(2);
  a.LockStripe(1);
  a.UnlockStripe(1);
  b.UnlockStripe(2);
  EXPECT_EQ(lockdep::InversionCount(), 1u);

  // Dedup: repeating the bad order must not multiply the report.
  b.LockStripe(3);
  a.LockStripe(4);
  a.UnlockStripe(4);
  b.UnlockStripe(3);
  EXPECT_EQ(lockdep::InversionCount(), 1u);

  const std::string report = lockdep::ReportText();
  EXPECT_NE(report.find("tblA/stripe"), std::string::npos) << report;
  EXPECT_NE(report.find("tblB/stripe"), std::string::npos) << report;
  EXPECT_NE(report.find("chain A"), std::string::npos) << report;
  EXPECT_NE(report.find("chain B"), std::string::npos) << report;
  EXPECT_NE(report.find("would close a cycle"), std::string::npos) << report;

  const std::string dot = lockdep::ReportDot();
  EXPECT_EQ(dot.rfind("digraph lockdep {", 0), 0u) << dot;
  EXPECT_NE(dot.find("label=\"inversion\""), std::string::npos) << dot;

  // CI's lockdep-smoke leg exports the digraph for external validation.
  if (const char* out = std::getenv("CNA_LOCKDEP_DOT_OUT")) {
    std::ofstream f(out);
    f << dot;
  }
}

// Consistent A-then-B ordering from every thread never reports: the edge is
// recorded once and the graph stays acyclic.
TEST_F(LockdepTest, ConsistentOrderStaysClean) {
  RealTable a({.stripes = 8, .metrics_name = "cleanA"});
  RealTable b({.stripes = 8, .metrics_name = "cleanB"});
  for (int i = 0; i < 100; ++i) {
    a.Lock(7);
    b.Lock(9);
    b.Unlock(9);
    a.Unlock(7);
  }
  EXPECT_EQ(lockdep::InversionCount(), 0u);
}

// Trylock acquisitions record no incoming edge (they cannot block) but stay
// on the stack as edge sources.
TEST_F(LockdepTest, TrylockIsEdgeSourceButNotEdgeTarget) {
  RealTable a({.stripes = 8, .metrics_name = "tryA"});
  RealTable b({.stripes = 8, .metrics_name = "tryB"});

  // B blocked-acquired, then A try-acquired: no A-incoming edge, so the
  // later A -> B blocking order is NOT an inversion.
  b.LockStripe(1);
  ASSERT_TRUE(a.TryLockStripe(2));
  a.UnlockStripe(2);
  b.UnlockStripe(1);

  a.LockStripe(2);
  b.LockStripe(1);  // records tryA -> tryB; no reverse edge exists
  b.UnlockStripe(1);
  a.UnlockStripe(2);
  EXPECT_EQ(lockdep::InversionCount(), 0u);

  // But a blocking acquisition made while HOLDING a trylocked stripe still
  // records the held trylock as an edge source: tryB -> tryA now closes the
  // cycle with tryA -> tryB above.
  ASSERT_TRUE(b.TryLockStripe(1));
  a.LockStripe(2);
  a.UnlockStripe(2);
  b.UnlockStripe(1);
  EXPECT_EQ(lockdep::InversionCount(), 1u);
}

// MultiGuard's sorted-ascending stripe order becomes a checked invariant.
TEST_F(LockdepTest, MultiGuardAscendingOrderIsClean) {
  RealTable table({.stripes = 64, .metrics_name = "multi"});
  for (std::uint64_t base : {0ull, 17ull, 101ull}) {
    locktable::LockTable<RealPlatform, RealCna>::MultiGuard guard(
        table, {base, base + 3, base + 11, base + 29});
    EXPECT_GE(guard.size(), 1u);
  }
  EXPECT_EQ(lockdep::InversionCount(), 0u);
  EXPECT_EQ(lockdep::HeldDepth(RealPlatform::CpuId()), 0);
}

TEST_F(LockdepTest, NestedDescendingInstanceTripsSameClassCheck) {
  const int cls = lockdep::InternClass("test/nested-order");
  const int site = lockdep::InternSite("Test::Nested");
  const int ctx = 200;
  // Ascending nested instances: fine.
  lockdep::OnAcquired(ctx, cls, site, 0x1000, false, false, /*nested=*/true,
                      0);
  lockdep::OnAcquired(ctx, cls, site, 0x2000, false, false, /*nested=*/true,
                      0);
  EXPECT_EQ(lockdep::InversionCount(), 0u);
  lockdep::OnReleased(ctx, cls, 0x2000);
  lockdep::OnReleased(ctx, cls, 0x1000);

  // Descending nested instances: the multi-key invariant is violated.
  lockdep::OnAcquired(ctx, cls, site, 0x2000, false, false, /*nested=*/true,
                      0);
  lockdep::OnAcquired(ctx, cls, site, 0x1000, false, false, /*nested=*/true,
                      0);
  EXPECT_EQ(lockdep::InversionCount(), 1u);
  lockdep::OnReleased(ctx, cls, 0x1000);
  lockdep::OnReleased(ctx, cls, 0x2000);

  const std::string report = lockdep::ReportText();
  EXPECT_NE(report.find("same-class order violation"), std::string::npos)
      << report;
}

TEST_F(LockdepTest, NonNestedSameClassNestingIsNotFlagged) {
  // The resizable table's migration path nests two same-class stripes
  // outside any multi-key transaction; that must never report.
  const int cls = lockdep::InternClass("test/migration");
  const int site = lockdep::InternSite("Test::Migrate");
  const int ctx = 201;
  lockdep::OnAcquired(ctx, cls, site, 0x2000, false, false, /*nested=*/false,
                      0);
  lockdep::OnAcquired(ctx, cls, site, 0x1000, false, false, /*nested=*/false,
                      0);
  EXPECT_EQ(lockdep::InversionCount(), 0u);
  lockdep::OnReleased(ctx, cls, 0x1000);
  lockdep::OnReleased(ctx, cls, 0x2000);
}

// Parking with a tracked lock held is flagged; parking with an empty held
// stack is not.
TEST_F(LockdepTest, ParkWhileHoldingIsDetected) {
  parking::ParkingLot<RealPlatform> lot;
  int dummy_key = 0;

  // Empty stack: a park is just a park.
  lot.ParkConditionally(&dummy_key, [] { return true; },
                        /*timeout_ns=*/100'000);
  EXPECT_EQ(lockdep::ParkWhileHeldCount(), 0u);

  RealTable table({.stripes = 8, .metrics_name = "parktbl"});
  table.LockStripe(0);
  lot.ParkConditionally(&dummy_key, [] { return true; },
                        /*timeout_ns=*/100'000);
  table.UnlockStripe(0);
  EXPECT_EQ(lockdep::ParkWhileHeldCount(), 1u);

  const std::string report = lockdep::ReportText();
  EXPECT_NE(report.find("park-while-held"), std::string::npos) << report;
  EXPECT_NE(report.find("parktbl/stripe"), std::string::npos) << report;
}

// Held stacks double as attribution: released holds accumulate into
// flamegraph.pl-compatible folded lines.
TEST_F(LockdepTest, FoldedStacksAccumulateHoldTime) {
  RealTable table({.stripes = 8, .metrics_name = "foldtbl"});
  table.Lock(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  table.Unlock(5);

  const std::string folded = lockdep::FoldedStacks();
  const std::string frame = "foldtbl/stripe@LockTable::LockStripe";
  const std::size_t pos = folded.find(frame);
  ASSERT_NE(pos, std::string::npos) << folded;
  // "frame weight\n": the weight is a positive integer.
  const std::size_t sp = folded.find(' ', pos);
  ASSERT_NE(sp, std::string::npos) << folded;
  EXPECT_GE(std::stoull(folded.substr(sp + 1)), 1'000'000ull) << folded;

  // Nested chains render as semicolon-joined frames.
  RealTable outer({.stripes = 8, .metrics_name = "foldouter"});
  outer.Lock(1);
  table.Lock(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  table.Unlock(5);
  outer.Unlock(1);
  EXPECT_NE(lockdep::FoldedStacks().find(
                "foldouter/stripe@LockTable::LockStripe;" + frame),
            std::string::npos)
      << lockdep::FoldedStacks();
}

// ---------------------------------------------------------------------------
// Simulator integration: the schedule-exploration gate.
// ---------------------------------------------------------------------------

sim::MachineConfig GatedTwoSocket(std::uint64_t seed) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  cfg.seed = seed;
  cfg.lockdep_check = true;
  return cfg;
}

TEST_F(LockdepTest, SimScheduleExplorationCleanWorkloadAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 99ull}) {
    lockdep::Reset();
    sim::Machine m(GatedTwoSocket(seed));
    SimTable a({.stripes = 16, .metrics_name = "simA"});
    SimTable b({.stripes = 16, .metrics_name = "simB"});
    for (int t = 0; t < 6; ++t) {
      m.Spawn([&a, &b, t] {
        for (int i = 0; i < 20; ++i) {
          const std::uint64_t key = static_cast<std::uint64_t>(t * 31 + i);
          a.Lock(key);
          b.Lock(key);
          b.Unlock(key);
          a.Unlock(key);
          SimTable::MultiGuard guard(a, {key, key + 5, key + 9});
        }
      });
    }
    EXPECT_NO_THROW(m.Run()) << "seed " << seed;
    EXPECT_EQ(lockdep::InversionCount(), 0u) << "seed " << seed;
  }
}

TEST_F(LockdepTest, SimSeededInversionTripsMachineGate) {
  sim::Machine m(GatedTwoSocket(1));
  SimTable a({.stripes = 8, .metrics_name = "simGateA"});
  SimTable b({.stripes = 8, .metrics_name = "simGateB"});
  // One fiber, sequential AB then BA: never deadlocks, but the recorded
  // orders close a cycle, and the gate must surface it at Run() end.
  m.Spawn([&a, &b] {
    a.LockStripe(1);
    b.LockStripe(2);
    b.UnlockStripe(2);
    a.UnlockStripe(1);
    b.LockStripe(2);
    a.LockStripe(1);
    a.UnlockStripe(1);
    b.UnlockStripe(2);
  });
  try {
    m.Run();
    FAIL() << "lockdep_check did not trip on a seeded inversion";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("lockdep"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("simGateB"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(lockdep::InversionCount(), 1u);
}

// Determinism: lockdep state lives entirely in plain std::atomic side
// tables the simulator does not charge, so the simulated clock is identical
// with tracking on or off.
//
// The coherence model keys cache lines by the sim::Atomic's raw address, so
// the simulated clock is only reproducible when the heap layout is -- two
// back-to-back runs in one process see different allocator state and drift
// by a few hundred simulated ns even with lockdep off.  Fork both runs from
// the same parent image instead: identical addresses, identical schedule,
// and the ONLY varying input is the lockdep flag.
std::uint64_t DeterminismWorkload(bool enabled) {
  lockdep::Reset();
  lockdep::SetEnabled(enabled);
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 4);
  cfg.seed = 42;
  sim::Machine m(cfg);
  SimTable a({.stripes = 16, .metrics_name = "detA"});
  SimTable b({.stripes = 16, .metrics_name = "detB"});
  for (int t = 0; t < 6; ++t) {
    m.Spawn([&a, &b, t] {
      for (int i = 0; i < 25; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t + i * 7);
        a.Lock(key);
        b.Lock(key);
        b.Unlock(key);
        a.Unlock(key);
      }
    });
  }
  m.Run();
  return m.FinalTimeNs();
}

TEST_F(LockdepTest, SimulatedClockIdenticalWithLockdepOnAndOff) {
#if !defined(__linux__) && !defined(__APPLE__)
  GTEST_SKIP() << "fork-based determinism check is POSIX-only";
#else
  int off_pipe[2];
  int on_pipe[2];
  ASSERT_EQ(pipe(off_pipe), 0);
  ASSERT_EQ(pipe(on_pipe), 0);

  // Fork the two children back to back, with no allocations in between, so
  // both start from byte-identical heap images.
  const pid_t off_pid = fork();
  ASSERT_GE(off_pid, 0);
  if (off_pid == 0) {
    const std::uint64_t v = DeterminismWorkload(false);
    (void)!write(off_pipe[1], &v, sizeof(v));
    _exit(0);
  }
  const pid_t on_pid = fork();
  ASSERT_GE(on_pid, 0);
  if (on_pid == 0) {
    const std::uint64_t v = DeterminismWorkload(true);
    (void)!write(on_pipe[1], &v, sizeof(v));
    _exit(0);
  }

  std::uint64_t off = 0;
  std::uint64_t on = 0;
  ASSERT_EQ(read(off_pipe[0], &off, sizeof(off)),
            static_cast<ssize_t>(sizeof(off)));
  ASSERT_EQ(read(on_pipe[0], &on, sizeof(on)),
            static_cast<ssize_t>(sizeof(on)));
  int status = 0;
  waitpid(off_pid, &status, 0);
  waitpid(on_pid, &status, 0);
  for (int fd : {off_pipe[0], off_pipe[1], on_pipe[0], on_pipe[1]}) {
    close(fd);
  }

  EXPECT_EQ(off, on);
  EXPECT_GT(on, 0u);
#endif
}

// ---------------------------------------------------------------------------
// C surface.
// ---------------------------------------------------------------------------

TEST_F(LockdepTest, CApiReportsSeededInversion) {
  cna_lockdep_enable(1);
  ASSERT_EQ(cna_lockdep_enabled(), 1);

  cna_mutex_t* cna_mu = cna_mutex_create("cna");
  cna_mutex_t* mcs_mu = cna_mutex_create("mcs");
  ASSERT_NE(cna_mu, nullptr);
  ASSERT_NE(mcs_mu, nullptr);

  cna_mutex_lock(cna_mu);
  cna_mutex_lock(mcs_mu);
  cna_mutex_unlock(mcs_mu);
  cna_mutex_unlock(cna_mu);
  EXPECT_EQ(cna_lockdep_inversions(), 0u);

  cna_mutex_lock(mcs_mu);
  cna_mutex_lock(cna_mu);
  cna_mutex_unlock(cna_mu);
  cna_mutex_unlock(mcs_mu);
  EXPECT_EQ(cna_lockdep_inversions(), 1u);

  char* report = cna_lockdep_report();
  ASSERT_NE(report, nullptr);
  EXPECT_NE(std::string(report).find("mutex/cna"), std::string::npos)
      << report;
  EXPECT_NE(std::string(report).find("mutex/mcs"), std::string::npos)
      << report;
  cna_telemetry_free(report);

  char* dot = cna_lockdep_dot();
  ASSERT_NE(dot, nullptr);
  EXPECT_NE(std::string(dot).find("digraph lockdep"), std::string::npos);
  cna_telemetry_free(dot);

  char* folded = cna_lockdep_folded(0);
  ASSERT_NE(folded, nullptr);
  cna_telemetry_free(folded);

  cna_lockdep_reset();
  EXPECT_EQ(cna_lockdep_inversions(), 0u);
  cna_lockdep_enable(0);
  EXPECT_EQ(cna_lockdep_enabled(), 0);

  cna_mutex_destroy(cna_mu);
  cna_mutex_destroy(mcs_mu);
}

// With tracking disabled, every hook is one relaxed load and nothing is
// recorded (and with -DCNA_LOCKDEP=0 the stubs return the same nothing).
TEST_F(LockdepTest, DisabledHooksRecordNothing) {
  lockdep::SetEnabled(false);
  RealTable a({.stripes = 8, .metrics_name = "offA"});
  RealTable b({.stripes = 8, .metrics_name = "offB"});
  a.LockStripe(1);
  b.LockStripe(2);
  b.UnlockStripe(2);
  a.UnlockStripe(1);
  b.LockStripe(2);
  a.LockStripe(1);
  a.UnlockStripe(1);
  b.UnlockStripe(2);
  EXPECT_EQ(lockdep::InversionCount(), 0u);
  EXPECT_EQ(lockdep::HeldDepth(RealPlatform::CpuId()), 0);
}

}  // namespace
}  // namespace cna
