// Property tests for the table_stats.h counter families shared by the three
// keyed namespaces (LockTable, RwLockTable, CombiningTable):
//
//  * snapshots are monotone -- every aggregate in a later Summarize() is >=
//    the same aggregate in an earlier one;
//  * per-stripe counters sum to the table totals -- Summarize() is exactly
//    the fold of stripe(s) over all stripes, occupied/max included;
//  * disabled stats stay disabled -- null stripe pointers, zero summaries.
//
// Drivers are single-threaded over RealPlatform, so the expected counts are
// exact, not bounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "locks/cna.h"
#include "locks/cna_rwlock.h"
#include "locktable/combining.h"
#include "locktable/lock_table.h"
#include "locktable/rw_lock_table.h"
#include "platform/real_platform.h"

namespace cna {
namespace {

using RealCna = locks::CnaLock<RealPlatform>;
using RealRw = locks::CnaRwLock<RealPlatform, locks::CnaRwCompactConfig>;

// One deterministic mixed workload phase against any of the three tables.
template <typename Driver>
void RunPhase(Driver&& op, std::uint64_t ops, std::uint64_t phase) {
  for (std::uint64_t i = 0; i < ops; ++i) {
    op(phase * 7919 + i * 31);  // spread keys over many stripes
  }
}

TEST(TableStatsProperties, LockTableMonotoneAndConsistent) {
  locktable::LockTable<RealPlatform, RealCna> table(
      {.stripes = 16, .collect_stats = true});
  auto op = [&table](std::uint64_t key) {
    {
      typename decltype(table)::Guard guard(table, key);
    }
    if (table.TryLock(key)) {
      table.Unlock(key);
    }
    const std::uint64_t keys[] = {key, key + 1};
    typename decltype(table)::MultiGuard txn(table, keys, 2);
  };

  RunPhase(op, 200, 1);
  const auto s1 = table.StatsSummary();
  RunPhase(op, 300, 2);
  const auto s2 = table.StatsSummary();

  // Monotone.
  EXPECT_GE(s2.total_acquisitions, s1.total_acquisitions);
  EXPECT_GE(s2.contended_acquisitions, s1.contended_acquisitions);
  EXPECT_GE(s2.trylock_failures, s1.trylock_failures);
  EXPECT_GE(s2.multi_key_acquisitions, s1.multi_key_acquisitions);
  EXPECT_GE(s2.occupied_stripes, s1.occupied_stripes);
  EXPECT_GE(s2.max_stripe_acquisitions, s1.max_stripe_acquisitions);
  EXPECT_GT(s2.total_acquisitions, s1.total_acquisitions);

  // Per-stripe fold equals the summary.
  std::uint64_t acq = 0, contended = 0, failures = 0, multi = 0, max = 0;
  std::size_t occupied = 0;
  for (std::size_t s = 0; s < table.stripes(); ++s) {
    const auto* c = table.StripeStats(s);
    ASSERT_NE(c, nullptr);
    const std::uint64_t a = c->acquisitions.load();
    acq += a;
    contended += c->contended.load();
    failures += c->trylock_failures.load();
    multi += c->multi_key.load();
    occupied += a > 0 ? 1 : 0;
    max = a > max ? a : max;
  }
  EXPECT_EQ(acq, s2.total_acquisitions);
  EXPECT_EQ(contended, s2.contended_acquisitions);
  EXPECT_EQ(failures, s2.trylock_failures);
  EXPECT_EQ(multi, s2.multi_key_acquisitions);
  EXPECT_EQ(occupied, s2.occupied_stripes);
  EXPECT_EQ(max, s2.max_stripe_acquisitions);
  EXPECT_EQ(s2.stripes, table.stripes());

  // Single-threaded accounting: Guard + TryLock + 2-key MultiGuard (the
  // MultiGuard takes 2 stripes, or 1 when key and key+1 collide).
  EXPECT_GE(s2.total_acquisitions, 500u * 3);
  EXPECT_LE(s2.total_acquisitions, 500u * 4);
  EXPECT_EQ(s2.trylock_failures, 0u);
  EXPECT_EQ(s2.multi_key_acquisitions + 500u * 2, s2.total_acquisitions);
}

TEST(TableStatsProperties, RwLockTableMonotoneAndConsistent) {
  locktable::RwLockTable<RealPlatform, RealRw> table(
      {.stripes = 16, .collect_stats = true});
  auto op = [&table](std::uint64_t key) {
    {
      typename decltype(table)::ReadGuard read(table, key);
    }
    {
      typename decltype(table)::WriteGuard write(table, key + 3);
    }
    if (table.TryLockShared(key)) {
      table.UnlockShared(key);
    }
  };

  RunPhase(op, 200, 1);
  const auto s1 = table.StatsSummary();
  RunPhase(op, 300, 2);
  const auto s2 = table.StatsSummary();

  EXPECT_GE(s2.read_acquisitions, s1.read_acquisitions);
  EXPECT_GE(s2.write_acquisitions, s1.write_acquisitions);
  EXPECT_GE(s2.read_contended, s1.read_contended);
  EXPECT_GE(s2.writer_waits, s1.writer_waits);
  EXPECT_GE(s2.trylock_failures, s1.trylock_failures);
  EXPECT_GE(s2.occupied_stripes, s1.occupied_stripes);
  EXPECT_GE(s2.max_stripe_acquisitions, s1.max_stripe_acquisitions);
  EXPECT_GT(s2.TotalAcquisitions(), s1.TotalAcquisitions());

  std::uint64_t reads = 0, writes = 0, rc = 0, ww = 0, failures = 0, max = 0;
  std::size_t occupied = 0;
  for (std::size_t s = 0; s < table.stripes(); ++s) {
    const auto* c = table.StripeStats(s);
    ASSERT_NE(c, nullptr);
    const std::uint64_t r = c->read_acquisitions.load();
    const std::uint64_t w = c->write_acquisitions.load();
    reads += r;
    writes += w;
    rc += c->read_contended.load();
    ww += c->writer_waits.load();
    failures += c->trylock_failures.load();
    occupied += r + w > 0 ? 1 : 0;
    max = r + w > max ? r + w : max;
  }
  EXPECT_EQ(reads, s2.read_acquisitions);
  EXPECT_EQ(writes, s2.write_acquisitions);
  EXPECT_EQ(rc, s2.read_contended);
  EXPECT_EQ(ww, s2.writer_waits);
  EXPECT_EQ(failures, s2.trylock_failures);
  EXPECT_EQ(occupied, s2.occupied_stripes);
  EXPECT_EQ(max, s2.max_stripe_acquisitions);

  EXPECT_EQ(s2.read_acquisitions, 500u * 2);
  EXPECT_EQ(s2.write_acquisitions, 500u);
}

TEST(TableStatsProperties, CombiningTableMonotoneAndConsistent) {
  locktable::CombiningTable<RealPlatform, RealCna> table(
      {.stripes = 16, .collect_stats = true});
  auto op = [&table](std::uint64_t key) {
    table.Apply(key, [] {});
    const std::uint64_t keys[] = {key, key + 5};
    table.ApplyBatch(keys, 2, [](std::uint64_t) {});
  };

  RunPhase(op, 200, 1);
  const auto s1 = table.CombiningSummary();
  RunPhase(op, 300, 2);
  const auto s2 = table.CombiningSummary();

  EXPECT_GE(s2.pass_through, s1.pass_through);
  EXPECT_GE(s2.combined, s1.combined);
  EXPECT_GE(s2.batches, s1.batches);
  EXPECT_GE(s2.budget_cutoffs, s1.budget_cutoffs);
  EXPECT_GE(s2.occupied_stripes, s1.occupied_stripes);
  EXPECT_GE(s2.max_stripe_ops, s1.max_stripe_ops);
  EXPECT_GT(s2.TotalOps(), s1.TotalOps());

  std::uint64_t pass = 0, comb = 0, batches = 0, cutoffs = 0, max = 0;
  std::size_t occupied = 0;
  for (std::size_t s = 0; s < table.stripes(); ++s) {
    const auto* c = table.CombiningStripeStats(s);
    ASSERT_NE(c, nullptr);
    const std::uint64_t ops = c->pass_through.load() + c->combined.load();
    pass += c->pass_through.load();
    comb += c->combined.load();
    batches += c->batches.load();
    cutoffs += c->budget_cutoffs.load();
    occupied += ops > 0 ? 1 : 0;
    max = ops > max ? ops : max;
  }
  EXPECT_EQ(pass, s2.pass_through);
  EXPECT_EQ(comb, s2.combined);
  EXPECT_EQ(batches, s2.batches);
  EXPECT_EQ(cutoffs, s2.budget_cutoffs);
  EXPECT_EQ(occupied, s2.occupied_stripes);
  EXPECT_EQ(max, s2.max_stripe_ops);

  // Single-threaded: one Apply + one 2-key batch per op (a batch of 2 keys
  // is 1 published op per distinct stripe, and key/key+5 never collide on a
  // stripe... unless the hash says so, in which case the batch is one op).
  EXPECT_EQ(s2.combined, 0u);
  EXPECT_GE(s2.pass_through, 500u * 2);
  EXPECT_LE(s2.pass_through, 500u * 3);
  // The underlying lock-table counters are live too, and agree: every
  // single-threaded op is one fast-path stripe acquisition.
  EXPECT_EQ(table.StatsSummary().total_acquisitions, s2.TotalOps());
}

TEST(TableStatsProperties, DisabledStatsStayDisabled) {
  locktable::LockTable<RealPlatform, RealCna> lock_table({.stripes = 8});
  locktable::RwLockTable<RealPlatform, RealRw> rw_table({.stripes = 8});
  locktable::CombiningTable<RealPlatform, RealCna> combining({.stripes = 8});

  {
    typename decltype(lock_table)::Guard guard(lock_table, 1);
  }
  {
    typename decltype(rw_table)::ReadGuard guard(rw_table, 1);
  }
  combining.Apply(1, [] {});

  EXPECT_FALSE(lock_table.stats_enabled());
  EXPECT_FALSE(rw_table.stats_enabled());
  EXPECT_FALSE(combining.stats_enabled());
  EXPECT_EQ(lock_table.StripeStats(0), nullptr);
  EXPECT_EQ(rw_table.StripeStats(0), nullptr);
  EXPECT_EQ(combining.CombiningStripeStats(0), nullptr);
  EXPECT_EQ(lock_table.StatsSummary().total_acquisitions, 0u);
  EXPECT_EQ(rw_table.StatsSummary().TotalAcquisitions(), 0u);
  EXPECT_EQ(combining.CombiningSummary().TotalOps(), 0u);
}

}  // namespace
}  // namespace cna
