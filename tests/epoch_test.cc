// Simulator-based schedule exploration of the epoch-based reclamation
// subsystem (src/epoch/epoch.h).
//
// The domain's contract has three faces, and each gets its invariant checked
// across explored interleavings (different seeds jitter fiber arrival and
// therefore pin/advance/retire schedules):
//  * Safety -- no reclamation while pinned: an object retired after a
//    context pinned cannot have its deleter run until that context unpins.
//    Readers chase an atomically republished pointer and assert, while
//    still pinned, that the node they loaded was not freed under them.
//  * Liveness -- epoch advance: pin/unpin churn never wedges the global
//    epoch; TryAdvance from any context eventually succeeds and every
//    retired item is reclaimable once the pinners quiesce.
//  * Drain on quiesce: DrainAll() from a quiescent state frees everything
//    pending and the retired/reclaimed accounting balances exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "epoch/epoch.h"
#include "platform/real_platform.h"
#include "sim/machine.h"
#include "sim/sim_platform.h"

namespace cna {
namespace {

using SimDomain = epoch::Domain<SimPlatform>;
using RealDomain = epoch::Domain<RealPlatform>;

sim::MachineConfig SmallMachine(std::uint64_t seed) {
  sim::MachineConfig cfg;
  cfg.topology = numa::Topology::Uniform(2, 8);
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// Single-context semantics (RealPlatform, no concurrency): the grace-period
// arithmetic and the guard surface.
// ---------------------------------------------------------------------------

TEST(EpochDomain, RetireThenDrainRunsDeleterExactlyOnce) {
  RealDomain domain;
  int freed = 0;
  domain.Retire(&freed, [](void* p) { ++*static_cast<int*>(p); });
  EXPECT_EQ(domain.Pending(), 1u);
  // Nothing is pinned, so DrainAll advances past the grace period and frees.
  domain.DrainAll();
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(domain.Pending(), 0u);
  const auto s = domain.StatsSummary();
  EXPECT_EQ(s.retired, 1u);
  EXPECT_EQ(s.reclaimed, 1u);
}

TEST(EpochDomain, GracePeriodIsTwoAdvances) {
  RealDomain domain;
  int freed = 0;
  domain.Retire(&freed, [](void* p) { ++*static_cast<int*>(p); });
  // Retire()'s opportunistic TryAdvance may have moved the epoch once
  // already; what the contract promises is that the item is NOT free before
  // two advances past its retire epoch, and IS freeable after.
  domain.ReclaimQuiesced();
  const std::uint64_t retire_epoch = domain.GlobalEpoch() - 1;
  while (domain.GlobalEpoch() < retire_epoch + 2) {
    EXPECT_EQ(freed, 0) << "freed before the grace period elapsed";
    ASSERT_TRUE(domain.TryAdvance());
  }
  domain.ReclaimQuiesced();
  EXPECT_EQ(freed, 1);
}

TEST(EpochDomain, PinBlocksReclamationUntilUnpin) {
  RealDomain domain;
  int freed = 0;
  const int slot = domain.Pin();
  EXPECT_TRUE(domain.PinnedInThisContext());
  domain.Retire(&freed, [](void* p) { ++*static_cast<int*>(p); });
  // The calling context is pinned at the current epoch: the two advances
  // the grace period needs cannot both happen, so no amount of draining
  // may free the item.
  for (int i = 0; i < 8; ++i) {
    domain.TryAdvance();
    domain.ReclaimQuiesced();
  }
  EXPECT_EQ(freed, 0);
  EXPECT_EQ(domain.Pending(), 1u);
  domain.Unpin(slot);
  EXPECT_FALSE(domain.PinnedInThisContext());
  domain.DrainAll();
  EXPECT_EQ(freed, 1);
}

TEST(EpochDomain, GuardsNestAndMoveWithoutDoubleUnpin) {
  RealDomain domain;
  {
    RealDomain::Guard outer(domain);
    {
      RealDomain::Guard inner(domain);  // depth bump on the same slot
      EXPECT_TRUE(domain.PinnedInThisContext());
    }
    EXPECT_TRUE(domain.PinnedInThisContext());
    RealDomain::Guard moved(std::move(outer));  // old guard must not unpin
    EXPECT_TRUE(domain.PinnedInThisContext());
  }
  EXPECT_FALSE(domain.PinnedInThisContext());
}

TEST(EpochDomain, DestructorFreesPendingItemsUnconditionally) {
  int freed = 0;
  {
    RealDomain domain;
    domain.Retire(&freed, [](void* p) { ++*static_cast<int*>(p); });
    // No drain: the item is still pending when the domain dies.
  }
  EXPECT_EQ(freed, 1);
}

// ---------------------------------------------------------------------------
// Schedule exploration: no reclamation while pinned.
//
// A writer fiber repeatedly replaces a published node and retires the old
// one; reader fibers pin, load the pointer, dawdle (forcing interleavings),
// and then -- still pinned -- assert the node was not freed under them.
// The deleter flips the node's freed flag, so a premature free is observed
// directly rather than via undefined behaviour.
// ---------------------------------------------------------------------------

struct Node {
  explicit Node(std::uint64_t v) : value(v) {}
  std::uint64_t value;
  bool freed = false;
};

struct ExplorationResult {
  bool use_after_free = false;
  std::uint64_t advances = 0;
  std::uint64_t retired = 0;
  std::uint64_t reclaimed = 0;
};

ExplorationResult ExploreReadersVsRetirer(std::uint64_t seed, int readers,
                                          int updates) {
  sim::Machine m(SmallMachine(seed));
  SimDomain domain;
  // All nodes preallocated so the deleter only flips a flag; storage
  // outlives the machine and is inspected afterwards.
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(updates) + 1);
  nodes.emplace_back(0);
  for (int i = 1; i <= updates; ++i) {
    nodes.emplace_back(static_cast<std::uint64_t>(i));
  }
  SimPlatform::Atomic<Node*> published{&nodes[0]};
  ExplorationResult result;

  m.Spawn([&] {
    for (int i = 1; i <= updates; ++i) {
      Node* old = published.load(std::memory_order_seq_cst);
      published.store(&nodes[static_cast<std::size_t>(i)],
                      std::memory_order_seq_cst);
      domain.Retire(old, [](void* p) { static_cast<Node*>(p)->freed = true; });
      sim::Machine::Active()->AdvanceLocalWork(
          50 + sim::Machine::Active()->Random() % 150);
    }
  });
  for (int r = 0; r < readers; ++r) {
    m.Spawn([&, r] {
      sim::Machine::Active()->AdvanceLocalWork(
          static_cast<std::uint64_t>(r) * 131 + 1);
      for (int i = 0; i < updates; ++i) {
        SimDomain::Guard g(domain);
        Node* n = published.load(std::memory_order_seq_cst);
        // Interleave: the writer may retire n and try to advance while we
        // hold the pin.  The pin must keep n alive regardless.
        sim::Machine::Active()->AdvanceLocalWork(
            30 + sim::Machine::Active()->Random() % 120);
        if (n->freed) {
          result.use_after_free = true;
        }
      }
    });
  }
  m.Run();

  // Quiesced: everything retired must now drain, and only retired nodes may
  // carry the freed flag.
  domain.DrainAll();
  const auto s = domain.StatsSummary();
  result.advances = s.advances;
  result.retired = s.retired;
  result.reclaimed = s.reclaimed;
  EXPECT_EQ(s.retired, static_cast<std::uint64_t>(updates)) << "seed " << seed;
  EXPECT_EQ(s.reclaimed, s.retired) << "seed " << seed;
  for (int i = 0; i < updates; ++i) {
    EXPECT_TRUE(nodes[static_cast<std::size_t>(i)].freed)
        << "node " << i << " leaked, seed " << seed;
  }
  EXPECT_FALSE(nodes.back().freed) << "live node freed, seed " << seed;
  return result;
}

TEST(EpochSim, NoReclamationWhilePinnedAcrossSchedules) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull, 0xdeadull}) {
    const auto r = ExploreReadersVsRetirer(seed, /*readers=*/6, /*updates=*/40);
    EXPECT_FALSE(r.use_after_free) << "seed " << seed;
  }
}

// Liveness: under steady pin/unpin churn the epoch keeps advancing -- the
// scan never misreads a transient slot state as a permanent straggler.
TEST(EpochSim, EpochAdvancesUnderPinChurn) {
  for (std::uint64_t seed : {3ull, 11ull, 77ull}) {
    sim::Machine m(SmallMachine(seed));
    SimDomain domain;
    const std::uint64_t start_epoch = domain.GlobalEpoch();
    constexpr int kFibers = 8;
    constexpr int kIters = 60;
    m.Spawn([&] {
      // A dedicated tryer: with every retire list empty, nobody else calls
      // TryAdvance, which is exactly the liveness question.
      for (int i = 0; i < kIters; ++i) {
        domain.TryAdvance();
        sim::Machine::Active()->AdvanceLocalWork(
            40 + sim::Machine::Active()->Random() % 100);
      }
    });
    for (int t = 0; t < kFibers; ++t) {
      m.Spawn([&, t] {
        sim::Machine::Active()->AdvanceLocalWork(
            static_cast<std::uint64_t>(t) * 97 + 1);
        for (int i = 0; i < kIters; ++i) {
          SimDomain::Guard g(domain);
          sim::Machine::Active()->AdvanceLocalWork(
              20 + sim::Machine::Active()->Random() % 80);
        }
      });
    }
    m.Run();
    EXPECT_GT(domain.GlobalEpoch(), start_epoch) << "seed " << seed;
  }
}

// Retire from a pinned context: the caller's own pin blocks the grace
// period, so self-retire can never self-free -- but after unpinning the
// item drains normally.  Explored with competing pinners to exercise the
// advance scan against mixed slot states.
TEST(EpochSim, SelfRetireCannotSelfFree) {
  for (std::uint64_t seed : {5ull, 23ull, 99ull}) {
    sim::Machine m(SmallMachine(seed));
    SimDomain domain;
    bool premature = false;
    std::vector<Node> nodes;
    constexpr int kFibers = 4;
    constexpr int kIters = 20;
    nodes.reserve(kFibers * kIters);
    for (int i = 0; i < kFibers * kIters; ++i) {
      nodes.emplace_back(static_cast<std::uint64_t>(i));
    }
    for (int t = 0; t < kFibers; ++t) {
      m.Spawn([&, t] {
        for (int i = 0; i < kIters; ++i) {
          Node* mine = &nodes[static_cast<std::size_t>(t * kIters + i)];
          SimDomain::Guard g(domain);
          domain.Retire(mine,
                        [](void* p) { static_cast<Node*>(p)->freed = true; });
          domain.TryAdvance();
          domain.ReclaimQuiesced();
          sim::Machine::Active()->AdvanceLocalWork(
              10 + sim::Machine::Active()->Random() % 60);
          if (mine->freed) {
            premature = true;  // freed while its retirer was still pinned
          }
        }
      });
    }
    m.Run();
    EXPECT_FALSE(premature) << "seed " << seed;
    domain.DrainAll();
    EXPECT_EQ(domain.Pending(), 0u) << "seed " << seed;
    for (const Node& n : nodes) {
      EXPECT_TRUE(n.freed) << "node " << n.value << " leaked, seed " << seed;
    }
  }
}

// Drain on quiesce: after Run() (all fibers joined, nothing pinned),
// DrainAll frees every pending item in one call and the counters balance.
TEST(EpochSim, DrainAllOnQuiesceFreesEverything) {
  sim::Machine m(SmallMachine(17));
  SimDomain domain;
  constexpr int kFibers = 6;
  constexpr int kPerFiber = 25;
  std::vector<Node> nodes;
  nodes.reserve(kFibers * kPerFiber);
  for (int i = 0; i < kFibers * kPerFiber; ++i) {
    nodes.emplace_back(static_cast<std::uint64_t>(i));
  }
  for (int t = 0; t < kFibers; ++t) {
    m.Spawn([&, t] {
      for (int i = 0; i < kPerFiber; ++i) {
        // Half the retires happen under a pin (the resizable table's
        // pattern -- Retire() runs inside an operation), half outside.
        if (i % 2 == 0) {
          SimDomain::Guard g(domain);
          domain.Retire(&nodes[static_cast<std::size_t>(t * kPerFiber + i)],
                        [](void* p) { static_cast<Node*>(p)->freed = true; });
        } else {
          domain.Retire(&nodes[static_cast<std::size_t>(t * kPerFiber + i)],
                        [](void* p) { static_cast<Node*>(p)->freed = true; });
        }
        sim::Machine::Active()->AdvanceLocalWork(
            15 + sim::Machine::Active()->Random() % 50);
      }
    });
  }
  m.Run();
  domain.DrainAll();
  const auto s = domain.StatsSummary();
  EXPECT_EQ(s.retired, static_cast<std::uint64_t>(kFibers * kPerFiber));
  EXPECT_EQ(s.reclaimed, s.retired);
  EXPECT_EQ(domain.Pending(), 0u);
  for (const Node& n : nodes) {
    EXPECT_TRUE(n.freed);
  }
}

}  // namespace
}  // namespace cna
