// Public-surface tests for the sharded lock table: the registry factory
// (MakeLockTable over every lock kind), core::ShardedMutex, and the C
// surface (cna_locktable_*) round-trip, including a real-thread stress that
// the CI ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/any_lock_table.h"
#include "core/pthread_api.h"
#include "core/registry.h"
#include "platform/real_platform.h"

namespace cna {
namespace {

// ---------- Registry factory ----------

TEST(MakeLockTable, EveryKindBuildsAndRoundTrips) {
  for (auto kind : core::AllLockKinds()) {
    auto table = core::MakeLockTable<RealPlatform>(
        kind, locktable::LockTableOptions{.stripes = 8});
    ASSERT_NE(table, nullptr) << core::LockKindName(kind);
    EXPECT_EQ(table->Stripes(), 8u);
    EXPECT_EQ(table->Name(), core::LockKindName(kind));
    table->Lock(42);
    table->Unlock(42);
    const std::uint64_t keys[3] = {1, 2, 3};
    table->LockMany(keys, 3);
    table->UnlockMany(keys, 3);
    EXPECT_GE(table->LockStateBytes(),
              table->Stripes() * table->PerStripeStateBytes());
  }
}

TEST(MakeLockTable, OneWordKindsStayCompact) {
  for (auto kind : {core::LockKind::kMcs, core::LockKind::kCna,
                    core::LockKind::kCnaOpt}) {
    auto table = core::MakeLockTable<RealPlatform>(
        kind, locktable::LockTableOptions{.stripes = 1024});
    EXPECT_EQ(table->PerStripeStateBytes(), sizeof(void*))
        << core::LockKindName(kind);
    EXPECT_EQ(table->LockStateBytes(), 1024 * sizeof(void*))
        << core::LockKindName(kind);
  }
}

TEST(MakeLockTable, TryLockSupportMatchesTheLockKind) {
  auto cna = core::MakeLockTable<RealPlatform>(
      core::LockKind::kCna, locktable::LockTableOptions{.stripes = 4});
  ASSERT_TRUE(cna->SupportsTryLock());
  EXPECT_TRUE(cna->TryLock(9));
  EXPECT_FALSE(cna->TryLock(9));  // same stripe, already held
  cna->Unlock(9);
}

// ---------- ShardedMutex ----------

TEST(ShardedMutex, ByNameAndByKind) {
  core::ShardedMutex by_kind(core::LockKind::kCna, 64);
  core::ShardedMutex by_name("cna", 64);
  EXPECT_EQ(by_kind.stripes(), 64u);
  EXPECT_EQ(by_name.name(), "cna");
  EXPECT_EQ(by_name.lock_state_bytes(), 64 * sizeof(void*));
  EXPECT_THROW(core::ShardedMutex("no-such-lock", 8), std::invalid_argument);
}

TEST(ShardedMutex, LockManyIsDeadlockFreeAcrossThreads) {
  core::ShardedMutex table("cna", 16);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::uint64_t> accounts(32, 1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t x = static_cast<std::uint64_t>(t) * 977 + 13;
      for (int i = 0; i < kIters; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t a = (x >> 13) % accounts.size();
        const std::uint64_t b = (x >> 41) % accounts.size();
        if (a == b) {
          continue;
        }
        // Opposite key orders from different threads: the sorted-stripe
        // acquisition inside lock_many prevents deadlock.
        table.lock_many({a, b});
        if (accounts[a] > 0) {
          accounts[a] -= 1;
          accounts[b] += 1;
        }
        table.unlock_many({a, b});
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::uint64_t total = 0;
  for (std::uint64_t v : accounts) {
    total += v;
  }
  EXPECT_EQ(total, 1000u * accounts.size());
}

TEST(ShardedMutex, PerKeyCountersSurviveContention) {
  core::ShardedMutex table("cna", 8);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  constexpr std::uint64_t kKeys = 16;
  std::vector<std::uint64_t> counters(kKeys, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t x = static_cast<std::uint64_t>(t) + 1;
      for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % kKeys;
        table.lock(key);
        ++counters[key];
        table.unlock(key);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counters) {
    total += c;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------- C surface ----------

TEST(CLockTableApi, CreateByNameRoundTrip) {
  cna_locktable_t* table = cna_locktable_create("cna", 100);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(cna_locktable_stripes(table), 128u);  // rounded up to 2^7
  EXPECT_EQ(cna_locktable_state_bytes(table), 128 * sizeof(void*));
  EXPECT_EQ(cna_locktable_lock(table, 7), 0);
  EXPECT_EQ(cna_locktable_trylock(table, 7), EBUSY);  // same stripe
  EXPECT_EQ(cna_locktable_unlock(table, 7), 0);
  EXPECT_EQ(cna_locktable_trylock(table, 7), 0);
  EXPECT_EQ(cna_locktable_unlock(table, 7), 0);
  cna_locktable_destroy(table);
}

TEST(CLockTableApi, MultiKeyTransactions) {
  cna_locktable_t* table = cna_locktable_create_default(16);
  ASSERT_NE(table, nullptr);
  const uint64_t keys[4] = {1, 2, 3, 1ull << 40};
  EXPECT_EQ(cna_locktable_lock_many(table, keys, 4), 0);
  EXPECT_EQ(cna_locktable_unlock_many(table, keys, 4), 0);
  cna_locktable_destroy(table);
}

TEST(CLockTableApi, StripeOfMatchesLockGranularity) {
  cna_locktable_t* table = cna_locktable_create("mcs", 64);
  ASSERT_NE(table, nullptr);
  const size_t s = cna_locktable_stripe_of(table, 99);
  EXPECT_LT(s, cna_locktable_stripes(table));
  EXPECT_EQ(s, cna_locktable_stripe_of(table, 99));
  cna_locktable_destroy(table);
}

TEST(CLockTableApi, UnlockWithoutLockReturnsEperm) {
  cna_locktable_t* table = cna_locktable_create("cna", 8);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(cna_locktable_unlock(table, 99), EPERM);
  const uint64_t keys[2] = {1, 2};
  EXPECT_EQ(cna_locktable_unlock_many(table, keys, 2), EPERM);
  // Misuse must not corrupt the table: a normal round-trip still works.
  EXPECT_EQ(cna_locktable_lock(table, 99), 0);
  EXPECT_EQ(cna_locktable_unlock(table, 99), 0);
  cna_locktable_destroy(table);
}

TEST(CLockTableApi, PartialUnlockManyReleasesNothing) {
  cna_locktable_t* table = cna_locktable_create("cna", 1024);
  ASSERT_NE(table, nullptr);
  // Hold key B's stripe but not key A's.
  uint64_t held = 1;
  uint64_t unheld = 2;
  while (cna_locktable_stripe_of(table, held) ==
         cna_locktable_stripe_of(table, unheld)) {
    ++unheld;
  }
  ASSERT_EQ(cna_locktable_lock(table, held), 0);
  const uint64_t keys[2] = {unheld, held};
  // The checked release verifies the whole set before touching anything, so
  // the held stripe must survive the failed call...
  EXPECT_EQ(cna_locktable_unlock_many(table, keys, 2), EPERM);
  // ...which we can observe: unlocking it normally still succeeds.
  EXPECT_EQ(cna_locktable_unlock(table, held), 0);
  EXPECT_EQ(cna_locktable_unlock(table, held), EPERM);  // now actually free
  cna_locktable_destroy(table);
}

TEST(CLockTableApi, AbsurdStripeCountYieldsNullNotAbort) {
  // 2^40 stripes would be a terabyte of lock words; creation must fail by
  // returning nullptr (no exception may cross the C boundary).
  EXPECT_EQ(cna_locktable_create("cna", size_t{1} << 40), nullptr);
  EXPECT_EQ(cna_locktable_create_default(~size_t{0}), nullptr);
}

TEST(CMutexApi, UnlockWithoutLockReturnsEperm) {
  cna_mutex_t* mutex = cna_mutex_create("mcs");
  ASSERT_NE(mutex, nullptr);
  EXPECT_EQ(cna_mutex_unlock(mutex), EPERM);
  EXPECT_EQ(cna_mutex_lock(mutex), 0);
  EXPECT_EQ(cna_mutex_unlock(mutex), 0);
  cna_mutex_destroy(mutex);
}

TEST(CLockTableApi, RejectsUnknownNamesAndNulls) {
  EXPECT_EQ(cna_locktable_create("no-such-lock", 8), nullptr);
  EXPECT_EQ(cna_locktable_create(nullptr, 8), nullptr);
  EXPECT_EQ(cna_locktable_lock(nullptr, 1), EINVAL);
  EXPECT_EQ(cna_locktable_trylock(nullptr, 1), EINVAL);
  EXPECT_EQ(cna_locktable_unlock(nullptr, 1), EINVAL);
  EXPECT_EQ(cna_locktable_lock_many(nullptr, nullptr, 0), EINVAL);
  EXPECT_EQ(cna_locktable_stripes(nullptr), 0u);
  EXPECT_EQ(cna_locktable_state_bytes(nullptr), 0u);
  cna_locktable_destroy(nullptr);  // must be a no-op
}

TEST(CLockTableApi, CrossThreadTryLockSeesHeldStripe) {
  cna_locktable_t* table = cna_locktable_create("cna", 4);
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(cna_locktable_lock(table, 0), 0);
  const size_t held_stripe = cna_locktable_stripe_of(table, 0);
  // Find another key on the same stripe and one on a different stripe.
  uint64_t same = 1;
  while (cna_locktable_stripe_of(table, same) != held_stripe) {
    ++same;
  }
  uint64_t other = 1;
  while (cna_locktable_stripe_of(table, other) == held_stripe) {
    ++other;
  }
  int same_result = -1;
  int other_result = -1;
  std::thread worker([&] {
    same_result = cna_locktable_trylock(table, same);
    other_result = cna_locktable_trylock(table, other);
    if (other_result == 0) {
      cna_locktable_unlock(table, other);
    }
  });
  worker.join();
  EXPECT_EQ(same_result, EBUSY);
  EXPECT_EQ(other_result, 0);
  EXPECT_EQ(cna_locktable_unlock(table, 0), 0);
  cna_locktable_destroy(table);
}

}  // namespace
}  // namespace cna
